"""The vectorized lockstep backend: one interpretation pass, whole-grid math.

The programs the pipeline generates are strictly SPMD: every PE runs the
same program image, the same task activations, the same scalar control flow
(module variables only ever take uniform values), and schedules the same
exchange descriptors.  Only *buffer contents* differ between PEs.  This
backend exploits that structure:

* every PE-local buffer is batched into one ``(height, width, z)`` float32
  array, so a DSD compute builtin executes as a single whole-grid NumPy
  operation instead of ``width × height`` independent 1-D updates;
* the program image is interpreted **once** per delivery round against the
  shared scalar state (:class:`GridState` quacks like one
  :class:`~repro.wse.pe.ProcessingElement`);
* the chunked halo exchange of ``CommsRuntime`` becomes shifted-slice array
  copies: the data PE ``(x, y)`` pulls from its ``(x+dx, y+dy)`` neighbour is
  the source array shifted by ``(-dy, -dx)``.  The fabric border dispatches
  on the program's :class:`~repro.frontends.common.BoundaryCondition` —
  constant fill (``dirichlet``), wrapped rows/columns (``periodic``) or
  edge-mirrored rows/columns (``reflect``) — through the per-direction
  fold/gather tables the :class:`~repro.wse.plan.ExecutionPlan` compiled
  ahead of execution (the same tables the per-PE reference runtime reads).

The arithmetic performed per element is identical to the reference backend
(same NumPy ufuncs, same order), so results are bit-identical — the golden
equivalence tests pin this down.  Should a program ever diverge between PEs
(none the pipeline generates do), scalar control flow would observe an array
where a scalar is required and fail loudly rather than mis-execute.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.wse.dsd import Dsd
from repro.wse.executors.base import (
    Executor,
    missing_field_error,
    register_executor,
)
from repro.wse.interpreter import PeInterpreter, ProgramImage
from repro.wse.pe import ActivatedTask, PendingExchange, new_pe_counters

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.plan import ExecutionPlan


class GridState:
    """Lockstep state of the whole fabric, presented as one virtual PE.

    Buffers hold every PE's column at once (``(height, width, z)``); the
    scalar state — variables, task queue, pending exchange, halt flag,
    activity counters — is stored once because it is uniform across PEs.
    The attribute surface mirrors :class:`~repro.wse.pe.ProcessingElement`
    so :class:`LockstepInterpreter` can drive it unchanged.
    """

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        #: whole-grid buffers, keyed by the csl.zeros symbol name.
        self.buffers: dict[str, np.ndarray] = {}
        #: module-scope scalar variables (uniform across PEs).
        self.variables: dict[str, float] = {}
        #: queue of activated tasks awaiting execution (uniform).
        self.task_queue: deque[ActivatedTask] = deque()
        #: exchange scheduled by csl.comms_exchange, awaiting delivery.
        self.pending_exchange: PendingExchange | None = None
        #: set once the program returns control to the host.
        self.halted = False
        #: per-PE activity counters (each PE performs identical work).
        self.counters: dict[str, int] = new_pe_counters()

    def allocate(self, name: str, size: int) -> None:
        if name not in self.buffers:
            self.buffers[name] = np.zeros(
                (self.height, self.width, size), dtype=np.float32
            )

    def activate(self, task: ActivatedTask) -> None:
        self.task_queue.append(task)

    @property
    def is_idle(self) -> bool:
        return not self.task_queue and self.pending_exchange is None

    def memory_in_use(self) -> int:
        """Bytes in use on *one* PE (every PE holds the same buffers)."""
        return sum(
            buffer.shape[-1] * buffer.itemsize for buffer in self.buffers.values()
        )


class LockstepInterpreter(PeInterpreter):
    """A :class:`PeInterpreter` whose DSDs span the whole grid at once."""

    def _resolve_dsd(self, dsd: Dsd) -> np.ndarray:
        return dsd.resolve_columns(self.pe.buffers)


# --------------------------------------------------------------------------- #
# The two-phase exchange over batched (rows, cols, z) buffers
#
# One authoritative implementation shared by every lockstep-shaped backend:
# the vectorized executor runs it over the whole grid, the tiled executor's
# shard runners over their sub-rectangles (with a barrier between the
# phases).  Bit-identical per-element behaviour across backends depends on
# these two functions being the single source of the exchange semantics.
# --------------------------------------------------------------------------- #


def stage_exchange_chunks(
    exchange: PendingExchange,
    chunk_of,
    rows: int,
    cols: int,
    counters: dict[str, int],
) -> list[np.ndarray]:
    """Phase 1: snapshot everything the region will receive.

    ``chunk_of(direction, start, stop)`` gathers the ``(rows, cols,
    stop-start)`` chunk pulled along one direction; all gathers complete
    before any callback may mutate a buffer (all sends precede the local
    update).  Wavelet accounting happens here, per chunk, exactly as the
    per-PE reference runtime counts it.
    """
    staged: list[np.ndarray] = []
    for chunk_index in range(exchange.num_chunks):
        start = exchange.source_offset + chunk_index * exchange.chunk_size
        stop = start + exchange.chunk_size
        parts = []
        for slot, direction in enumerate(exchange.directions):
            data = chunk_of(direction, start, stop)
            if exchange.coefficients is not None:
                data = data * np.float32(exchange.coefficients[slot])
            parts.append(data)
        staged.append(
            np.concatenate(parts, axis=2)
            if parts
            else np.zeros((rows, cols, 0), dtype=np.float32)
        )
        counters["wavelets_sent"] += exchange.chunk_size * len(
            exchange.directions
        )
    return staged


def deliver_exchange_chunks(
    state,
    interpreter: PeInterpreter,
    exchange: PendingExchange,
    staged: list[np.ndarray],
) -> None:
    """Phase 2: write each chunk into the receive buffer, run the receive
    callback per chunk, then queue the completion callback."""
    receive_buffer = state.buffers[exchange.receive_buffer]
    for chunk_index, chunk_data in enumerate(staged):
        receive_buffer[:, :, : chunk_data.shape[-1]] = chunk_data
        if exchange.receive_callback:
            interpreter.run_callable(
                exchange.receive_callback,
                argument=chunk_index * exchange.chunk_size,
            )
    if exchange.done_callback:
        state.activate(ActivatedTask(exchange.done_callback))


@register_executor
class VectorizedExecutor(Executor):
    """Interpret the program image once; execute ops as whole-grid math."""

    name = "vectorized"

    def __init__(
        self,
        image: ProgramImage,
        width: int,
        height: int,
        plan: "ExecutionPlan | None" = None,
    ):
        super().__init__(image, width, height, plan)
        self.state = GridState(width, height)
        self.interpreter = LockstepInterpreter(image, self.state, self.plan)
        self.interpreter.initialise()
        self._grid_views: list[list[_PeView]] | None = None
        #: the boundary condition the plan was compiled against.
        self.boundary = self.plan.boundary

    # ------------------------------------------------------------------ #
    # Host-side data movement
    # ------------------------------------------------------------------ #

    def _field_array(self, name: str) -> np.ndarray:
        try:
            return self.state.buffers[name]
        except KeyError:
            raise missing_field_error(name, self.state.buffers, (0, 0)) from None

    def load_field(self, name: str, columns: np.ndarray) -> None:
        array = self._field_array(name)
        self._check_columns(name, columns, array.shape[-1])
        # Host arrays are (width, height, z); grid arrays are (height, width, z).
        array[:] = columns.transpose(1, 0, 2).astype(np.float32)

    def read_field(self, name: str) -> np.ndarray:
        array = self._field_array(name)
        return np.ascontiguousarray(array.transpose(1, 0, 2))

    def pe(self, x: int, y: int) -> "_PeView":
        self._check_pe_coords(x, y)
        return _PeView(self.state, x, y)

    @property
    def grid(self) -> list[list["_PeView"]]:
        if self._grid_views is None:
            self._grid_views = [
                [_PeView(self.state, x, y) for x in range(self.width)]
                for y in range(self.height)
            ]
        return self._grid_views

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        entry_name = entry if entry is not None else self.image.entry
        self.interpreter.run_callable(entry_name)
        self._pending_launch = True

    def _drain_tasks(self) -> None:
        self.interpreter.run_pending_tasks()

    def _all_settled(self) -> bool:
        return self.state.halted or self.state.is_idle

    # ------------------------------------------------------------------ #
    # The chunked halo exchange as shifted-slice copies
    # ------------------------------------------------------------------ #

    def _shifted_chunk(
        self, source: np.ndarray, direction: tuple[int, int], start: int, stop: int
    ) -> np.ndarray:
        """The chunk every PE pulls from its ``(x+dx, y+dy)`` neighbour.

        The boundary folding was resolved at plan time: under
        ``periodic``/``reflect`` every coordinate folds onto the fabric and
        the whole grid is one fancy-index gather over the plan's index
        tables; under ``dirichlet`` the in-fabric rectangle the plan
        precomputed is a shifted-slice copy over a constant-fill background.
        """
        indices = self.plan.gather_indices(direction)
        if indices is not None:
            rows, cols = indices
            # Fancy indexing gathers a fresh (height, width, chunk) copy.
            return source[rows, cols, start:stop]
        table = self.plan.halo_table(direction)
        dx, dy = direction
        out = np.full(
            (self.height, self.width, stop - start),
            table.fill_value,
            dtype=np.float32,
        )
        y0, y1, x0, x1 = table.interior_box()
        if y0 < y1 and x0 < x1:
            out[y0:y1, x0:x1] = source[y0 + dy : y1 + dy, x0 + dx : x1 + dx, start:stop]
        return out

    def _deliver_round(self) -> int:
        exchange = self.state.pending_exchange
        if exchange is None:
            return 0
        self.state.pending_exchange = None
        source = self.state.buffers[exchange.source_buffer]
        staged = stage_exchange_chunks(
            exchange,
            lambda direction, start, stop: self._shifted_chunk(
                source, direction, start, stop
            ),
            self.height,
            self.width,
            self.state.counters,
        )
        deliver_exchange_chunks(self.state, self.interpreter, exchange, staged)
        return self.width * self.height

    # ------------------------------------------------------------------ #

    def _collect_statistics(self) -> None:
        stats = self.statistics
        num_pes = self.width * self.height
        counters = self.state.counters
        stats.tasks_run += counters["tasks_run"] * num_pes
        stats.exchanges += counters["exchanges"] * num_pes
        stats.dsd_ops += counters["dsd_ops"] * num_pes
        stats.dsd_elements += counters["dsd_elements"] * num_pes
        stats.wavelets_sent += counters["wavelets_sent"] * num_pes
        stats.max_pe_memory_bytes = max(
            stats.max_pe_memory_bytes, self.state.memory_in_use()
        )


class _PeView:
    """One PE's slice of the lockstep grid state.

    Mirrors the read surface of :class:`~repro.wse.pe.ProcessingElement`
    (``buffers``, ``counters``, ``memory_in_use()``) so the performance model
    and tests can inspect any PE regardless of the active backend.  The
    counters dict is the shared per-PE-uniform one: lockstep execution means
    every PE performed exactly the same work.
    """

    def __init__(self, state: GridState, x: int, y: int):
        self._state = state
        self.x = x
        self.y = y

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        return {
            name: array[self.y, self.x]
            for name, array in self._state.buffers.items()
        }

    @property
    def counters(self) -> dict[str, int]:
        return self._state.counters

    @property
    def variables(self) -> dict[str, float]:
        return self._state.variables

    @property
    def halted(self) -> bool:
        return self._state.halted

    def memory_in_use(self) -> int:
        return self._state.memory_in_use()
