"""Interpreter for generated csl-ir PE programs.

Executes the *final* output of the compilation pipeline — the csl-ir program
module — against one PE's state.  Only the constructs the pipeline generates
are supported; anything else raises :class:`InterpretationError`, which keeps
the interpreter honest as a functional model of the generated CSL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.dialects import arith, csl, scf
from repro.frontends.common import BoundaryCondition
from repro.ir.attributes import FloatAttr, IntAttr, StringAttr
from repro.ir.exceptions import InterpretationError
from repro.ir.operation import Block, Operation
from repro.ir.value import SSAValue
from repro.wse.dsd import Dsd
from repro.wse.pe import ActivatedTask, PendingExchange, ProcessingElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.plan import ExecutionPlan


class ProgramImage:
    """Pre-processed view of a csl-ir program module."""

    def __init__(self, program_module: "csl.CslModuleOp"):
        if program_module.kind != csl.ModuleKind.PROGRAM:
            raise InterpretationError("expected a csl program module")
        self.module = program_module
        self.callables: dict[str, Operation] = {}
        self.buffers: dict[str, int] = {}
        self.variables: dict[str, float] = {}
        self.params: dict[str, int] = {}
        self.entry = "f_main"

        for op in program_module.ops:
            if isinstance(op, (csl.FuncOp, csl.TaskOp)):
                self.callables[op.sym_name] = op
            elif isinstance(op, csl.ZerosOp):
                name_attr = op.attributes.get("sym_name")
                if isinstance(name_attr, StringAttr):
                    self.buffers[name_attr.data] = op.buffer_type.element_count()
            elif isinstance(op, csl.VariableOp):
                self.variables[op.sym_name] = op.init
            elif isinstance(op, csl.ParamOp):
                if op.default is not None:
                    self.params[op.param_name] = int(op.default)

        entry_attr = program_module.attributes.get("entry")
        if isinstance(entry_attr, StringAttr):
            self.entry = entry_attr.data

    @property
    def width(self) -> int:
        attr = self.module.attributes.get("width")
        return attr.value if isinstance(attr, IntAttr) else 1

    @property
    def height(self) -> int:
        attr = self.module.attributes.get("height")
        return attr.value if isinstance(attr, IntAttr) else 1

    @property
    def boundary(self) -> BoundaryCondition:
        """The boundary condition compiled into the program.

        Images produced before the boundary attributes existed (or built by
        hand in tests) fall back to the historical Dirichlet-zero halo.
        """
        kind_attr = self.module.attributes.get("boundary")
        value_attr = self.module.attributes.get("boundary_value")
        kind = kind_attr.data if isinstance(kind_attr, StringAttr) else "dirichlet"
        value = value_attr.value if isinstance(value_attr, FloatAttr) else 0.0
        return BoundaryCondition(kind, value if kind == "dirichlet" else 0.0)

    def task_by_id(self, task_id: int) -> "csl.TaskOp | None":
        for op in self.callables.values():
            if isinstance(op, csl.TaskOp) and op.task_id == task_id:
                return op
        return None


class PeInterpreter:
    """Executes csl-ir callables against one PE's state.

    ``plan`` is the pre-compiled :class:`~repro.wse.plan.ExecutionPlan` of
    the image: when present, DSD-producing ops and exchange schedules are
    served from its plan-time tables instead of being re-derived per
    interpretation.  Without a plan the interpreter falls back to deriving
    everything from the op attributes (hand-built test images use this).
    """

    def __init__(
        self,
        image: ProgramImage,
        pe: ProcessingElement,
        plan: "ExecutionPlan | None" = None,
    ):
        self.image = image
        self.pe = pe
        self.plan = plan

    # ------------------------------------------------------------------ #

    def initialise(self) -> None:
        """Allocate module buffers and variables on the PE."""
        buffers = self.plan.buffers if self.plan is not None else self.image.buffers
        variables = (
            self.plan.variables if self.plan is not None else self.image.variables
        )
        for name, size in buffers.items():
            self.pe.allocate(name, size)
        for name, init in variables.items():
            self.pe.variables.setdefault(name, init)

    def run_callable(self, name: str, argument: Any = None) -> None:
        callable_op = self.image.callables.get(name)
        if callable_op is None:
            raise InterpretationError(f"unknown function or task '{name}'")
        block = callable_op.regions[0].blocks[0]
        env: dict[int, Any] = {}
        if block.args:
            env[id(block.args[0])] = argument if argument is not None else 0
        self.pe.counters["tasks_run"] += 1
        self._run_block(block, env)

    def run_pending_tasks(self) -> None:
        """Drain the PE's task queue (tasks may activate further tasks)."""
        while self.pe.task_queue and not self.pe.halted:
            task = self.pe.task_queue.popleft()
            self.run_callable(task.name, task.argument)

    # ------------------------------------------------------------------ #

    def _run_block(self, block: Block, env: dict[int, Any]) -> None:
        for op in block.ops:
            if isinstance(op, (csl.ReturnOp, scf.YieldOp)):
                return
            self._execute(op, env)

    def _value(self, value: SSAValue, env: dict[int, Any]) -> Any:
        if id(value) in env:
            return env[id(value)]
        raise InterpretationError(
            f"use of a value that was never defined while interpreting "
            f"(type {value.type})"
        )

    def _resolve(self, value: SSAValue, env: dict[int, Any]) -> Any:
        """Resolve a value to either a scalar or a NumPy view."""
        resolved = self._value(value, env)
        if isinstance(resolved, Dsd):
            return self._resolve_dsd(resolved)
        return resolved

    def _resolve_dsd(self, dsd: Dsd) -> np.ndarray:
        """A writable view of the described elements (executor-specific)."""
        return dsd.resolve(self.pe.buffers)

    # ------------------------------------------------------------------ #

    def _execute(self, op: Operation, env: dict[int, Any]) -> None:
        handler = _HANDLERS.get(type(op))
        if handler is None:
            raise InterpretationError(f"unsupported operation '{op.name}'")
        handler(self, op, env)


# --------------------------------------------------------------------------- #
# Handlers
# --------------------------------------------------------------------------- #


def _handle_constant(interp: PeInterpreter, op, env) -> None:
    env[id(op.results[0])] = op.value


def _handle_load_var(interp: PeInterpreter, op: csl.LoadVarOp, env) -> None:
    env[id(op.result)] = interp.pe.variables.get(op.var, 0)


def _handle_store_var(interp: PeInterpreter, op: csl.StoreVarOp, env) -> None:
    interp.pe.variables[op.var] = interp._value(op.value, env)


def _binary_int(operation):
    def handler(interp: PeInterpreter, op, env) -> None:
        lhs = interp._value(op.lhs, env)
        rhs = interp._value(op.rhs, env)
        env[id(op.result)] = operation(lhs, rhs)

    return handler


def _handle_cmpi(interp: PeInterpreter, op: arith.CmpiOp, env) -> None:
    lhs = interp._value(op.lhs, env)
    rhs = interp._value(op.rhs, env)
    predicate = op.predicate
    comparisons = {
        "eq": lhs == rhs,
        "ne": lhs != rhs,
        "slt": lhs < rhs,
        "sle": lhs <= rhs,
        "sgt": lhs > rhs,
        "sge": lhs >= rhs,
    }
    env[id(op.result)] = bool(comparisons[predicate])


def _handle_if(interp: PeInterpreter, op: scf.IfOp, env) -> None:
    condition = interp._value(op.condition, env)
    region = op.then_region if condition else op.else_region
    if region.blocks and region.blocks[0].ops:
        interp._run_block(region.blocks[0], env)


def _handle_call(interp: PeInterpreter, op: csl.CallOp, env) -> None:
    interp.run_callable(op.callee)


def _handle_activate(interp: PeInterpreter, op: csl.ActivateOp, env) -> None:
    interp.pe.activate(ActivatedTask(op.task_name))


def _handle_get_mem_dsd(interp: PeInterpreter, op: csl.GetMemDsdOp, env) -> None:
    if interp.plan is not None:
        planned = interp.plan.static_dsd(op)
        if planned is not None:
            env[id(op.result)] = planned
            return
    buffer_attr = op.attributes.get("buffer")
    if isinstance(buffer_attr, StringAttr):
        buffer_name = buffer_attr.data
    elif op.operands:
        source = interp._value(op.operands[0], env)
        if not isinstance(source, Dsd):
            raise InterpretationError("csl.get_mem_dsd operand is not a DSD")
        buffer_name = source.buffer
    else:
        raise InterpretationError("csl.get_mem_dsd has neither buffer nor operand")
    env[id(op.result)] = Dsd(buffer_name, op.offset, op.length, op.stride)


def _handle_increment_dsd(
    interp: PeInterpreter, op: csl.IncrementDsdOffsetOp, env
) -> None:
    if interp.plan is not None:
        planned = interp.plan.static_dsd(op)
        if planned is not None:
            env[id(op.result)] = planned
            return
    base = interp._value(op.operands[0], env)
    if not isinstance(base, Dsd):
        raise InterpretationError("csl.increment_dsd_offset operand is not a DSD")
    extra = op.offset
    if len(op.operands) > 1:
        extra += int(interp._value(op.operands[1], env))
    env[id(op.result)] = base.shifted(extra)


def _dsd_builtin(compute):
    def handler(interp: PeInterpreter, op, env) -> None:
        dest_value = interp._value(op.dest, env)
        if not isinstance(dest_value, Dsd):
            raise InterpretationError(f"'{op.name}' destination is not a DSD")
        dest = interp._resolve_dsd(dest_value)
        sources = [interp._resolve(source, env) for source in op.sources]
        dest[:] = compute(dest, *sources)
        interp.pe.counters["dsd_ops"] += 1
        # The last axis is the DSD extent on every executor (the vectorized
        # backend prepends the grid axes); count per-PE elements, not grid ones.
        interp.pe.counters["dsd_elements"] = (
            interp.pe.counters.get("dsd_elements", 0) + int(dest.shape[-1])
        )

    return handler


def _handle_comms_exchange(
    interp: PeInterpreter, op: csl.CommsExchangeOp, env
) -> None:
    buffer_value = interp._value(op.buffer, env)
    if not isinstance(buffer_value, Dsd):
        raise InterpretationError("csl.comms_exchange buffer operand is not a DSD")

    planned = interp.plan.exchange_plan(op) if interp.plan is not None else None
    if planned is not None:
        interp.pe.counters["exchanges"] += 1
        # The source buffer comes from the runtime DSD operand: the plan's
        # statically-propagated name matches it on every generated program,
        # but a dynamic operand chain stays authoritative.
        interp.pe.pending_exchange = PendingExchange(
            source_buffer=buffer_value.buffer,
            source_offset=planned.source_offset,
            source_length=planned.source_length,
            chunk_size=planned.chunk_size,
            num_chunks=planned.num_chunks,
            directions=planned.directions,
            coefficients=planned.coefficients,
            receive_buffer=planned.receive_buffer,
            receive_callback=planned.receive_callback,
            done_callback=planned.done_callback,
        )
        return

    attributes = op.attributes
    src_offset = attributes["src_offset"].value  # type: ignore[union-attr]
    src_len = attributes["src_len"].value  # type: ignore[union-attr]
    chunk_size = attributes["chunk_size"].value  # type: ignore[union-attr]
    recv_buffer = op.attributes["recv_buffer"].string_value  # type: ignore[union-attr]

    interp.pe.counters["exchanges"] += 1
    interp.pe.pending_exchange = PendingExchange(
        source_buffer=buffer_value.buffer,
        source_offset=src_offset,
        source_length=src_len,
        chunk_size=chunk_size,
        num_chunks=op.num_chunks,
        directions=op.directions,
        coefficients=op.coefficients,
        receive_buffer=recv_buffer,
        receive_callback=op.recv_callback,
        done_callback=op.done_callback,
    )


def _handle_unblock(interp: PeInterpreter, op, env) -> None:
    interp.pe.halted = True


def _noop(interp: PeInterpreter, op, env) -> None:
    return None


_HANDLERS: dict[type, Any] = {
    csl.ConstantOp: _handle_constant,
    arith.ConstantOp: _handle_constant,
    csl.LoadVarOp: _handle_load_var,
    csl.StoreVarOp: _handle_store_var,
    arith.AddiOp: _binary_int(lambda a, b: a + b),
    arith.SubiOp: _binary_int(lambda a, b: a - b),
    arith.MuliOp: _binary_int(lambda a, b: a * b),
    arith.AddfOp: _binary_int(lambda a, b: a + b),
    arith.SubfOp: _binary_int(lambda a, b: a - b),
    arith.MulfOp: _binary_int(lambda a, b: a * b),
    arith.DivfOp: _binary_int(lambda a, b: a / b),
    arith.CmpiOp: _handle_cmpi,
    scf.IfOp: _handle_if,
    csl.CallOp: _handle_call,
    csl.ActivateOp: _handle_activate,
    csl.GetMemDsdOp: _handle_get_mem_dsd,
    csl.IncrementDsdOffsetOp: _handle_increment_dsd,
    csl.FaddsOp: _dsd_builtin(lambda dest, a, b: a + b),
    csl.FsubsOp: _dsd_builtin(lambda dest, a, b: a - b),
    csl.FmulsOp: _dsd_builtin(lambda dest, a, b: a * b),
    csl.FmacsOp: _dsd_builtin(lambda dest, acc, src, coeff: acc + src * coeff),
    csl.FmovsOp: _dsd_builtin(lambda dest, src: src),
    csl.CommsExchangeOp: _handle_comms_exchange,
    csl.UnblockCmdStreamOp: _handle_unblock,
    csl.ImportModuleOp: _noop,
    csl.ExportOp: _noop,
    csl.RpcOp: _noop,
    csl.MemberCallOp: _noop,
    csl.MemberAccessOp: _noop,
}
