"""Machine descriptions of the Cerebras WSE2 and WSE3.

All numbers are taken from the paper (Sections 1, 2 and 6.3) and from the
public Cerebras architecture disclosures it cites:

* WSE2: 850,000 PEs, 40 GB of on-chip SRAM (48 kB per PE);
* WSE3: 900,000 PEs, 44 GB of on-chip SRAM, 214 Pb/s aggregate fabric
  bandwidth, 1.52 PFLOP/s FP32 peak, 18.22 PB/s memory bandwidth and
  3.30 PB/s fabric bandwidth (Figure 7's roofline ceilings);
* each PE performs a 128-bit read and a 64-bit write per cycle and exchanges
  one 32-bit wavelet per direction per cycle.

The WSE2's switch limitation — every PE must also transmit to itself when
configuring the four cardinal routes (Section 6) — is modelled with the
``self_transmit_overhead`` flag, which the WSE3 communications library no
longer needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WseMachineSpec:
    """Static description of one WSE generation."""

    name: str
    #: usable PE grid (the fabric reserves some rows/columns for IO).
    grid_width: int
    grid_height: int
    #: clock frequency in Hz.
    clock_hz: float
    #: per-PE local memory in bytes (48 kB on both generations).
    pe_memory_bytes: int
    #: FP32 peak of the whole wafer, FLOP/s.
    peak_flops: float
    #: aggregate local-memory bandwidth, bytes/s.
    memory_bandwidth: float
    #: aggregate fabric bandwidth, bytes/s.
    fabric_bandwidth: float
    #: FP32 multiply-accumulate lanes per PE per cycle.
    simd_lanes: int
    #: wavelets (32-bit words) a PE can send per direction per cycle.
    wavelets_per_cycle: float
    #: task switch / activation overhead in cycles.
    task_activation_cycles: int
    #: WSE2 switch restriction: PEs transmit to themselves as well.
    self_transmit_overhead: bool

    @property
    def total_pes(self) -> int:
        return self.grid_width * self.grid_height

    @property
    def peak_flops_per_pe(self) -> float:
        return self.peak_flops / self.total_pes

    def fits_in_pe_memory(self, bytes_needed: int) -> bool:
        return bytes_needed <= self.pe_memory_bytes


#: The CS-2's wafer: 750 x 994 usable PEs (the paper's "large" size fully
#: occupies the WSE2 grid).
WSE2 = WseMachineSpec(
    name="wse2",
    grid_width=750,
    grid_height=994,
    clock_hz=850e6,
    pe_memory_bytes=48 * 1024,
    peak_flops=0.97e15,
    memory_bandwidth=12.9e15,
    fabric_bandwidth=2.33e15,
    simd_lanes=4,
    wavelets_per_cycle=1.0,
    task_activation_cycles=60,
    self_transmit_overhead=True,
)

#: The CS-3's wafer: about 900,000 PEs with upgraded switching logic.
WSE3 = WseMachineSpec(
    name="wse3",
    grid_width=762,
    grid_height=1176,
    clock_hz=975e6,
    pe_memory_bytes=48 * 1024,
    peak_flops=1.52e15,
    memory_bandwidth=18.22e15,
    fabric_bandwidth=3.30e15,
    simd_lanes=4,
    wavelets_per_cycle=1.0,
    task_activation_cycles=55,
    self_transmit_overhead=False,
)


def machine_by_name(name: str) -> WseMachineSpec:
    """Look up a machine spec by its short name ("wse2" or "wse3")."""
    lowered = name.lower()
    if lowered in ("wse2", "cs2", "cs-2"):
        return WSE2
    if lowered in ("wse3", "cs3", "cs-3"):
        return WSE3
    raise KeyError(f"unknown WSE generation '{name}'")
