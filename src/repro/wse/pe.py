"""Per-PE state: local memory, module variables, task queue, pending exchange."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np


#: the per-PE activity counters every execution backend maintains; shared
#: so the lockstep/sharded state mirrors and the statistics folding can
#: never drift out of sync with the reference per-PE state.
PE_COUNTER_NAMES = (
    "tasks_run",
    "exchanges",
    "dsd_ops",
    "dsd_elements",
    "wavelets_sent",
)


def new_pe_counters() -> dict[str, int]:
    """A fresh zeroed per-PE activity-counter dict."""
    return {name: 0 for name in PE_COUNTER_NAMES}


@dataclass
class PendingExchange:
    """A scheduled (not yet delivered) chunked halo exchange."""

    source_buffer: str
    source_offset: int
    source_length: int
    chunk_size: int
    num_chunks: int
    directions: tuple[tuple[int, int], ...]
    coefficients: tuple[float, ...] | None
    receive_buffer: str
    receive_callback: str
    done_callback: str


@dataclass
class ActivatedTask:
    """A task queued for execution, with its (optional) wavelet argument."""

    name: str
    argument: Any = None


class ProcessingElement:
    """State of one PE of the simulated fabric."""

    def __init__(self, x: int, y: int):
        self.x = x
        self.y = y
        #: PE-local buffers, keyed by the csl.zeros symbol name.
        self.buffers: dict[str, np.ndarray] = {}
        #: module-scope scalar variables (csl.variable).
        self.variables: dict[str, float] = {}
        #: queue of activated tasks awaiting execution.
        self.task_queue: deque[ActivatedTask] = deque()
        #: exchange scheduled by csl.comms_exchange, awaiting delivery.
        self.pending_exchange: PendingExchange | None = None
        #: set once the program returns control to the host.
        self.halted = False
        #: simple activity counters used by tests and the performance model.
        self.counters: dict[str, int] = new_pe_counters()

    def allocate(self, name: str, size: int) -> None:
        if name not in self.buffers:
            self.buffers[name] = np.zeros(size, dtype=np.float32)

    def activate(self, task: ActivatedTask) -> None:
        self.task_queue.append(task)

    @property
    def is_blocked(self) -> bool:
        """Blocked: waiting for an exchange with nothing left to run."""
        return self.pending_exchange is not None and not self.task_queue

    @property
    def is_idle(self) -> bool:
        return not self.task_queue and self.pending_exchange is None

    def memory_in_use(self) -> int:
        return sum(buffer.nbytes for buffer in self.buffers.values())
