"""Analytic performance model of the WSE (substituting for real CS-2/CS-3 runs).

The model is *measurement calibrated*: a benchmark is compiled by the real
pipeline for a small PE grid (the per-PE program is identical to the one a
full-wafer run would use, because the grid extent only appears in the layout
metaprogram), executed on the functional fabric simulator for a couple of
time steps, and the per-PE activity counters (DSD element operations, chunks,
wavelets, task activations) are extracted from an interior PE.  Those counts
are then combined with the published machine parameters
(:mod:`repro.wse.machine`) to estimate the per-time-step cycle count and thus
whole-wafer throughput for the paper's problem sizes.

Cycle model per PE per time step::

    compute  = dsd_element_ops / simd_efficiency
    comm     = wavelets * hop_multiplier * switch_multiplier / wavelets_per_cycle
    overhead = tasks * task_activation_cycles + chunks * chunk_setup_cycles
    cycles   = compute + comm + overhead

The WSE2's switch restriction (PEs transmit to themselves as well as to their
four neighbours, Section 6) appears as ``switch_multiplier = 1.25``; the
WSE3's upgraded switching logic removes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.definitions import Benchmark, ProblemSize
from repro.service.service import default_service
from repro.transforms.pipeline import PipelineOptions
from repro.wse.machine import WseMachineSpec
from repro.wse.simulator import WseSimulator

#: cycles to set up / tear down one chunked communication step.
CHUNK_SETUP_CYCLES = 150
#: fraction of the DSD element throughput actually achieved (pipeline stalls,
#: memory bank conflicts); calibrated against Jacquelin et al.'s 28.2 %-of-peak
#: observation for the 25-point kernel.
DSD_EFFICIENCY = 0.72
#: size of the calibration grid (interior PE measured at its centre).
_CALIBRATION_GRID = 5
_CALIBRATION_STEPS = 2


@dataclass(frozen=True)
class PeActivity:
    """Per-PE, per-time-step activity extracted from the simulator."""

    dsd_element_ops: float
    dsd_ops: float
    wavelets: float
    tasks: float
    exchanges: float
    num_chunks: int
    pattern: int
    memory_bytes: int


@dataclass(frozen=True)
class PerformanceEstimate:
    """Whole-wafer estimate for one benchmark / machine / problem size."""

    benchmark: str
    machine: str
    size: str
    grid_width: int
    grid_height: int
    z_core: int
    iterations: int
    cycles_per_step: float
    seconds: float
    gpts_per_second: float
    tflops: float
    pe_memory_bytes: int

    @property
    def gcells_per_second(self) -> float:
        return self.gpts_per_second


def measure_pe_activity(
    benchmark: Benchmark,
    machine: WseMachineSpec,
    num_chunks: int = 2,
    executor: str | None = None,
) -> PeActivity:
    """Compile and functionally execute the benchmark on a small grid, then
    report the per-time-step activity of the centre (interior) PE.

    ``executor`` selects the simulator backend for the calibration run; the
    counters are semantically identical across backends, so the estimate is
    too — the knob only trades calibration wall time (see
    :mod:`repro.wse.executors`).
    """
    radius = _benchmark_radius(benchmark)
    grid = max(_CALIBRATION_GRID, 2 * radius + 1)
    program = benchmark.program(
        nx=grid, ny=grid, nz=benchmark.z_dim, time_steps=_CALIBRATION_STEPS
    )
    options = PipelineOptions(
        grid_width=grid,
        grid_height=grid,
        num_chunks=num_chunks,
        target=machine.name,
    )
    # The service memoises by content fingerprint, so the many figures that
    # calibrate against the same (benchmark, target, chunks) configuration
    # compile it exactly once per process.
    result = default_service().compile_ir(program, options)
    simulator = WseSimulator(result.program_module, executor=executor)
    simulator.execute()

    centre = simulator.pe(grid // 2, grid // 2)
    steps = _CALIBRATION_STEPS
    exchanges = list(result.program_module.walk())
    from repro.dialects import csl

    exchange_ops = [op for op in exchanges if isinstance(op, csl.CommsExchangeOp)]
    max_chunks = max((op.num_chunks for op in exchange_ops), default=1)
    pattern = max((op.pattern for op in exchange_ops), default=1)

    return PeActivity(
        dsd_element_ops=centre.counters["dsd_elements"] / steps,
        dsd_ops=centre.counters["dsd_ops"] / steps,
        wavelets=centre.counters["wavelets_sent"] / steps,
        tasks=centre.counters["tasks_run"] / steps,
        exchanges=centre.counters["exchanges"] / steps,
        num_chunks=max_chunks,
        pattern=pattern,
        memory_bytes=centre.memory_in_use(),
    )


def _benchmark_radius(benchmark: Benchmark) -> int:
    return 4 if benchmark.stencil_points >= 25 else 2


def cycles_per_step(activity: PeActivity, machine: WseMachineSpec) -> float:
    """The per-PE cycle model described in the module docstring."""
    compute = activity.dsd_element_ops / DSD_EFFICIENCY
    switch_multiplier = 1.25 if machine.self_transmit_overhead else 1.0
    comm = (
        activity.wavelets
        * activity.pattern
        * switch_multiplier
        / machine.wavelets_per_cycle
    )
    overhead = (
        activity.tasks * machine.task_activation_cycles
        + activity.exchanges * activity.num_chunks * CHUNK_SETUP_CYCLES
    )
    return compute + comm + overhead


def estimate_performance(
    benchmark: Benchmark,
    machine: WseMachineSpec,
    size: ProblemSize,
    iterations: int | None = None,
    num_chunks: int = 2,
    activity: PeActivity | None = None,
    executor: str | None = None,
) -> PerformanceEstimate:
    """Whole-wafer throughput estimate for one benchmark configuration."""
    if activity is None:
        activity = measure_pe_activity(
            benchmark, machine, num_chunks=num_chunks, executor=executor
        )
    iterations = iterations if iterations is not None else benchmark.iterations

    cycles = cycles_per_step(activity, machine)
    seconds = cycles * iterations / machine.clock_hz
    z_core = benchmark.z_dim
    grid_points = size.nx * size.ny * z_core
    total_points = grid_points * iterations
    gpts = total_points / seconds / 1e9
    tflops = total_points * benchmark.flops_per_point / seconds / 1e12

    return PerformanceEstimate(
        benchmark=benchmark.name,
        machine=machine.name,
        size=size.name,
        grid_width=size.nx,
        grid_height=size.ny,
        z_core=z_core,
        iterations=iterations,
        cycles_per_step=cycles,
        seconds=seconds,
        gpts_per_second=gpts,
        tflops=tflops,
        pe_memory_bytes=activity.memory_bytes,
    )


# --------------------------------------------------------------------------- #
# Host-side backend cost model (for the `auto` executor dispatcher).
# --------------------------------------------------------------------------- #

#: per-backend host cost coefficients, fitted against the recorded
#: BENCH_simulator.json trajectory rows (Jacobian, 1x1 through 128x128):
#: ``(setup_seconds, per_round_base_seconds, per_pe_round, per_element_round)``.
#: ``reference`` pays Python interpretation per PE; ``vectorized`` pays a
#: fixed NumPy dispatch tax per round plus array math per element;
#: ``compiled`` halves both by fusing the round into generated code.
_HOST_MODEL = {
    "reference": (0.05e-3, 0.0, 40e-6, 35e-9),
    "vectorized": (0.35e-3, 20e-6, 0.0, 6e-9),
    "compiled": (1.1e-3, 8e-6, 0.0, 3e-9),
}

#: tiled-specific coefficients: fork/pool setup per shard, per-round
#: barrier + seam cost per shard, and the element work parallelised over
#: ``min(shards, cpus)`` workers.
_TILED_SETUP = 3e-3
_TILED_PER_SHARD_SETUP = 1.5e-3
_TILED_PER_SHARD_ROUND = 150e-6
_TILED_PER_ELEMENT_ROUND = 6e-9


def predict_host_seconds(
    executor: str,
    *,
    pes: int,
    depth: int,
    rounds: int,
    cpus: int = 1,
    shards: int = 1,
) -> float:
    """Predicted *host* wall-clock seconds for one run on one backend.

    This is not the WSE cycle model above — it prices the simulator
    backends themselves, so the ``auto`` dispatcher can rank them for a
    workload before running it.  ``pes`` is the fabric PE count, ``depth``
    the per-PE column length (elements = pes * depth), ``rounds`` the
    expected delivery rounds, and for ``tiled`` the shard count and usable
    CPUs bound the parallel speedup.
    """
    elements = pes * depth
    if executor == "tiled":
        workers = max(1, min(shards, cpus))
        return (
            _TILED_SETUP
            + _TILED_PER_SHARD_SETUP * shards
            + rounds
            * (
                _TILED_PER_SHARD_ROUND * shards
                + _TILED_PER_ELEMENT_ROUND * elements / workers
            )
        )
    try:
        setup, per_round, per_pe, per_element = _HOST_MODEL[executor]
    except KeyError:
        raise KeyError(
            f"no host cost model for executor '{executor}'"
        ) from None
    return setup + rounds * (per_round + per_pe * pes + per_element * elements)


# --------------------------------------------------------------------------- #
# The hand-written 25-point seismic kernel (Jacquelin et al.), WSE2 only.
# --------------------------------------------------------------------------- #


def handwritten_seismic_activity(
    generated: PeActivity, z_core: int
) -> PeActivity:
    """Model of the hand-written kernel's per-PE activity.

    Relative to the compiler-generated code (Section 6.1), the hand-written
    implementation:

    * always communicates in **two** chunks (the generated code fits a single
      chunk thanks to its lower memory footprint);
    * transmits the **full column** including the first and last values that
      the computation does not need;
    * uses roughly **twice** as many tasks per exchange step;
    * processes received data through per-point builtin calls rather than the
      compiler's one-shot broadcast reduction and fmacs fusion (Section 5.7),
      modelled as a small constant factor on the DSD element work.
    """
    full_column_factor = (z_core + 8) / z_core
    return PeActivity(
        dsd_element_ops=generated.dsd_element_ops * 1.05,
        dsd_ops=generated.dsd_ops,
        wavelets=generated.wavelets * full_column_factor,
        tasks=generated.tasks * 2.0,
        exchanges=generated.exchanges,
        num_chunks=max(2, generated.num_chunks),
        pattern=generated.pattern,
        memory_bytes=int(generated.memory_bytes * 1.35),
    )
