"""Compile-time lowering of a program image into an execution plan.

The programs the pipeline generates are strictly SPMD and their
communication structure is fully known at compile time, yet the executors
historically re-derived the same facts on every delivery round: DSD operands
were re-parsed per interpretation, the halo-exchange fold of every direction
was recomputed (or lazily memoised) per backend, and the exchange attributes
were unpacked per scheduled exchange.  :class:`ExecutionPlan` hoists all of
that out of the hot loop, once, ahead of execution:

* **DSD access plans** — every ``csl.get_mem_dsd`` anchored to a buffer
  symbol resolves to its :class:`~repro.wse.dsd.Dsd` at plan time, as do
  ``csl.increment_dsd_offset`` chains with static offsets; the interpreter's
  handlers become table lookups;
* **exchange schedule** — the attribute bundle of every
  ``csl.comms_exchange`` (offsets, chunking, directions, coefficients,
  callbacks) is parsed into an :class:`ExchangePlan` keyed by the op;
* **halo tables** — for each direction any exchange pulls from, the
  boundary-folded source row/column of every fabric row/column is
  precomputed into a :class:`HaloTable`: a pure gather (``periodic`` /
  ``reflect`` / interior) or a shifted-slice copy over a constant fill
  (``dirichlet``);
* **task activation order** — the callables reachable from the entry point,
  in deterministic discovery order.

The plan is *backend-neutral*: the ``reference`` executor reads per-PE
neighbour coordinates out of the same tables the ``vectorized`` executor
turns into whole-grid fancy-index gathers and the ``tiled`` executor
restricts to its shard boxes.  Plans are deterministic — compiling the same
image twice yields equal plans — and versioned (:data:`PLAN_VERSION`), so
run-level artifact fingerprints can fold the planning semantics in.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.dialects import csl
from repro.frontends.common import BoundaryCondition
from repro.ir.attributes import StringAttr
from repro.ir.operation import Block, Operation
from repro.wse.dsd import Dsd

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.interpreter import ProgramImage

#: bump when the lowering in this module changes observable execution;
#: folded into run-level fingerprints so cached run artifacts invalidate.
PLAN_VERSION = 1


@dataclass(frozen=True)
class ExchangePlan:
    """The static attribute bundle of one ``csl.comms_exchange`` op."""

    source_buffer: str | None  # None when the operand DSD is dynamic
    source_offset: int
    source_length: int
    chunk_size: int
    num_chunks: int
    directions: tuple[tuple[int, int], ...]
    coefficients: tuple[float, ...] | None
    receive_buffer: str
    receive_callback: str
    done_callback: str

    def canonical(self) -> dict:
        return {
            "source_buffer": self.source_buffer,
            "source_offset": self.source_offset,
            "source_length": self.source_length,
            "chunk_size": self.chunk_size,
            "num_chunks": self.num_chunks,
            "directions": [list(d) for d in self.directions],
            "coefficients": (
                list(self.coefficients) if self.coefficients is not None else None
            ),
            "receive_buffer": self.receive_buffer,
            "receive_callback": self.receive_callback,
            "done_callback": self.done_callback,
        }


@dataclass(frozen=True)
class HaloTable:
    """Boundary-folded source indices for a pull from ``(x+dx, y+dy)``.

    ``rows[y]`` / ``cols[x]`` give the fabric row/column the data PE
    ``(x, y)`` reads from along this direction, or ``None`` when the read
    falls off the fabric under a Dirichlet boundary (the read then sees
    ``fill_value``).  When no entry is ``None`` the whole direction is one
    gather; otherwise the in-fabric part is the shifted-slice rectangle
    :meth:`interior_box` over a constant-fill background.
    """

    direction: tuple[int, int]
    rows: tuple[int | None, ...]
    cols: tuple[int | None, ...]
    fill_value: float

    @property
    def gatherable(self) -> bool:
        return None not in self.rows and None not in self.cols

    def interior_box(self) -> tuple[int, int, int, int]:
        """``(y0, y1, x0, x1)``: the destination rows/cols with an in-fabric
        source under the Dirichlet fill path (source = dest + direction)."""
        dx, dy = self.direction
        height, width = len(self.rows), len(self.cols)
        y0, y1 = max(0, -dy), min(height, height - dy)
        x0, x1 = max(0, -dx), min(width, width - dx)
        return y0, y1, x0, x1

    def canonical(self) -> dict:
        return {
            "direction": list(self.direction),
            "rows": list(self.rows),
            "cols": list(self.cols),
            "fill_value": self.fill_value,
        }


def fold_table(
    boundary: BoundaryCondition, shift: int, extent: int
) -> tuple[int | None, ...]:
    """``index -> boundary.fold(index + shift, extent)`` for a whole axis."""
    return tuple(boundary.fold(i + shift, extent) for i in range(extent))


def build_halo_table(
    boundary: BoundaryCondition,
    direction: tuple[int, int],
    width: int,
    height: int,
) -> HaloTable:
    dx, dy = direction
    return HaloTable(
        direction=(dx, dy),
        rows=fold_table(boundary, dy, height),
        cols=fold_table(boundary, dx, width),
        fill_value=boundary.value,
    )


@dataclass(frozen=True)
class ShardGeometry:
    """A ``kx x ky`` rectangular decomposition of the fabric into shards.

    ``col_edges``/``row_edges`` are the stripe/band boundaries: shard
    ``(i, j)`` owns columns ``[col_edges[i], col_edges[i+1])`` and rows
    ``[row_edges[j], row_edges[j+1])``.  Bands are nearly equal — the first
    ``extent % k`` bands are one wider — matching the historical tiled
    decomposition.  The geometry is the shared vocabulary between the plan
    (seam publication sets), the codegen (shard-box kernels) and the tiled
    executor (worker pool layout), so it canonicalises for fingerprints.
    """

    row_edges: tuple[int, ...]
    col_edges: tuple[int, ...]

    @staticmethod
    def _edges(extent: int, k: int) -> tuple[int, ...]:
        base, remainder = divmod(extent, k)
        edges = [0]
        for i in range(k):
            edges.append(edges[-1] + base + (1 if i < remainder else 0))
        return tuple(edges)

    @classmethod
    def build(cls, width: int, height: int, kx: int, ky: int) -> "ShardGeometry":
        if not (1 <= kx <= width and 1 <= ky <= height):
            raise ValueError(
                f"shard grid {kx}x{ky} does not fit a {width}x{height} fabric"
            )
        return cls(row_edges=cls._edges(height, ky), col_edges=cls._edges(width, kx))

    @property
    def kx(self) -> int:
        return len(self.col_edges) - 1

    @property
    def ky(self) -> int:
        return len(self.row_edges) - 1

    def band_of(self, row: int) -> int:
        """The index of the row band containing fabric row ``row``."""
        return bisect_right(self.row_edges, row) - 1

    def stripe_of(self, col: int) -> int:
        """The index of the column stripe containing fabric column ``col``."""
        return bisect_right(self.col_edges, col) - 1

    def boxes(self) -> tuple[tuple[int, int, int, int], ...]:
        """All shard boxes ``(y0, y1, x0, x1)``, row-major (bands outer)."""
        return tuple(
            (self.row_edges[j], self.row_edges[j + 1],
             self.col_edges[i], self.col_edges[i + 1])
            for j in range(self.ky)
            for i in range(self.kx)
        )

    def canonical(self) -> dict:
        return {"row_edges": list(self.row_edges), "col_edges": list(self.col_edges)}


def seam_publication(
    plan: "ExecutionPlan", geometry: ShardGeometry
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The fabric rows/columns shards must publish into seam snapshots.

    A row ``r`` is published when some halo direction makes a destination
    row in a *different* band read from ``r`` — under periodic folds that
    can be a far edge, not just a band neighbour.  Columns likewise for
    stripes.  The result is sorted, so the publication slot of a row/column
    is its index here; every shard-box kernel agrees on the layout.
    """
    pub_rows: set[int] = set()
    pub_cols: set[int] = set()
    for table in plan.halo_tables.values():
        for y, src in enumerate(table.rows):
            if src is not None and geometry.band_of(y) != geometry.band_of(src):
                pub_rows.add(src)
        for x, src in enumerate(table.cols):
            if src is not None and geometry.stripe_of(x) != geometry.stripe_of(src):
                pub_cols.add(src)
    return tuple(sorted(pub_rows)), tuple(sorted(pub_cols))


class BlockHaloError(ValueError):
    """A depth-R halo block cannot be derived exactly for this shard."""


def exchange_radius(plan: "ExecutionPlan") -> tuple[int, int]:
    """``(ry, rx)``: the per-axis halo radius of the plan's exchanges."""
    ry = max((abs(dy) for _, dy in plan.halo_tables), default=0)
    rx = max((abs(dx) for dx, _ in plan.halo_tables), default=0)
    return ry, rx


def _window_map(
    boundary: BoundaryCondition, lo: int, hi: int, margin: int, extent: int
) -> tuple[int | None, ...]:
    """Fabric index of every cell of an extended window, ``None`` off-fabric.

    The window covers virtual positions ``[lo - margin, hi + margin)``;
    :meth:`BoundaryCondition.fold` resolves each to the real fabric cell it
    mirrors/wraps to (``None`` under Dirichlet).  Seeding window cell ``i``
    with the value of fabric cell ``map[i]`` is exact by definition of the
    boundary fold — this is the base case of the block-validity recursion.
    """
    return tuple(
        boundary.fold(lo - margin + i, extent)
        for i in range(hi - lo + 2 * margin)
    )


def _deep_axis_table(
    window: tuple[int | None, ...],
    boundary: BoundaryCondition,
    delta: int,
    extent: int,
) -> tuple[tuple[int | None, ...], tuple[bool, ...]]:
    """One axis of a depth-R staging table over an extended window.

    For window cell ``i`` standing in for fabric cell ``p = window[i]``, a
    pull along ``delta`` must read the value of fabric cell
    ``fold(p + delta)`` — the *fold-composed* source, not the naive shifted
    window position (under ``reflect`` the two differ near the mirror
    edge).  Among the window cells holding that fabric cell, the one
    nearest the naive position is chosen so interior runs stay contiguous.
    Returns ``(sources, missing)``: ``sources[i]`` is the window source
    index or ``None`` (Dirichlet fill), and ``missing[i]`` flags cells
    whose required fabric source is absent from the window entirely —
    reading them is only legal while they stay outside the valid region.
    Under periodic/reflect a missing cell self-sources instead (any finite
    value is fine for a cell the validity recursion already excludes), so
    those tables stay fully gatherable; under Dirichlet ``None`` is kept —
    the fill path treats it as the boundary constant, equally unread.
    """
    candidates: dict[int, list[int]] = {}
    for j, real in enumerate(window):
        if real is not None:
            candidates.setdefault(real, []).append(j)
    sources: list[int | None] = []
    missing: list[bool] = []
    for i, real in enumerate(window):
        if real is None:  # dead Dirichlet cell: never a source, value unused
            sources.append(None)
            missing.append(False)
            continue
        target = boundary.fold(real + delta, extent)
        if target is None:  # a true boundary fill, exact at any depth
            sources.append(None)
            missing.append(False)
            continue
        pool = candidates.get(target)
        if not pool:
            sources.append(None if boundary.kind == "dirichlet" else i)
            missing.append(True)
            continue
        naive = i + delta
        sources.append(min(pool, key=lambda j: (abs(j - naive), j)))
        missing.append(False)
    return tuple(sources), tuple(missing)


def _axis_validity(
    window: tuple[int | None, ...],
    tables: dict[int, tuple[tuple[int | None, ...], tuple[bool, ...]]],
    rounds: int,
) -> list[bool]:
    """Which window cells still hold exact values after ``rounds`` rounds.

    Round 0 is the gather-in: every in-fabric cell is exact.  Each round a
    cell stays exact only if it was exact and every per-delta source it
    reads is exact (a ``None`` source is the boundary constant — exact —
    unless the source was *missing* from the window).  The valid region
    shrinks inward by the axis radius per round; the block is usable when
    the core survives all ``rounds``.
    """
    valid = [real is not None for real in window]
    for _ in range(rounds):
        step = []
        for i in range(len(window)):
            ok = valid[i]
            if ok:
                for sources, missing in tables.values():
                    if missing[i]:
                        ok = False
                        break
                    src = sources[i]
                    if src is not None and not valid[src]:
                        ok = False
                        break
            step.append(ok)
        valid = step
    return valid


class BlockHaloSpec:
    """Depth-R halo tables for one shard box: the plan surface a temporal
    block kernel stages its exchanges through.

    The shard's arrays are extended by ``rounds * radius`` cells per axis;
    ``row_map``/``col_map`` give the fabric cell each extended cell stands
    in for (``None`` = off-fabric under Dirichlet), and :meth:`halo_table`
    serves fold-composed gather/fill tables in *extended* coordinates so
    the unmodified kernel emitter stages deep halos exactly.  Construction
    verifies, by the per-axis validity recursion, that the core rows and
    columns stay exact through all ``rounds`` — raising
    :class:`BlockHaloError` otherwise (callers then fall back to R=1).
    """

    def __init__(
        self,
        plan: "ExecutionPlan",
        box: tuple[int, int, int, int],
        rounds: int,
    ):
        if rounds < 2:
            raise BlockHaloError(f"temporal blocks need rounds >= 2, got {rounds}")
        self.plan = plan
        self.box = box
        self.rounds = rounds
        y0, y1, x0, x1 = box
        ry, rx = exchange_radius(plan)
        self.margin_y = rounds * ry
        self.margin_x = rounds * rx
        boundary = plan.boundary
        self.row_map = _window_map(boundary, y0, y1, self.margin_y, plan.height)
        self.col_map = _window_map(boundary, x0, x1, self.margin_x, plan.width)
        self.height = len(self.row_map)
        self.width = len(self.col_map)
        row_tables: dict[int, tuple] = {}
        col_tables: dict[int, tuple] = {}
        for dx, dy in plan.halo_tables:
            if dy not in row_tables:
                row_tables[dy] = _deep_axis_table(
                    self.row_map, boundary, dy, plan.height
                )
            if dx not in col_tables:
                col_tables[dx] = _deep_axis_table(
                    self.col_map, boundary, dx, plan.width
                )
        self._row_tables = row_tables
        self._col_tables = col_tables
        self._check_core_validity()
        self.tables: dict[tuple[int, int], HaloTable] = {
            (dx, dy): HaloTable(
                direction=(dx, dy),
                rows=row_tables[dy][0],
                cols=col_tables[dx][0],
                fill_value=plan.halo_tables[(dx, dy)].fill_value,
            )
            for dx, dy in plan.halo_tables
        }

    def _check_core_validity(self) -> None:
        y0, y1, x0, x1 = self.box
        for name, window, tables, margin, extent in (
            ("rows", self.row_map, self._row_tables, self.margin_y, y1 - y0),
            ("cols", self.col_map, self._col_tables, self.margin_x, x1 - x0),
        ):
            valid = _axis_validity(window, tables, self.rounds)
            if not all(valid[margin : margin + extent]):
                raise BlockHaloError(
                    f"core {name} of shard box {self.box} lose exactness "
                    f"within {self.rounds} rounds (margin {margin} too thin "
                    f"for this boundary fold)"
                )

    def gather_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast-ready fabric indices seeding the extended arrays.

        Dead (off-fabric Dirichlet) cells substitute fabric index 0 — their
        seeded values are never read by any valid cell, and a deterministic
        substitute keeps the gather reproducible.
        """
        rows = [0 if real is None else real for real in self.row_map]
        cols = [0 if real is None else real for real in self.col_map]
        return (
            np.asarray(rows, dtype=np.intp)[:, None],
            np.asarray(cols, dtype=np.intp)[None, :],
        )

    def core_slices(self) -> tuple[slice, slice]:
        """The core rows/cols of the extended arrays (the shard box)."""
        y0, y1, x0, x1 = self.box
        return (
            slice(self.margin_y, self.margin_y + (y1 - y0)),
            slice(self.margin_x, self.margin_x + (x1 - x0)),
        )


class BlockPlanView:
    """An :class:`ExecutionPlan` facade over one shard's extended window.

    Presents the extended dimensions and the depth-R fold-composed halo
    tables of a :class:`BlockHaloSpec` while delegating everything else
    (program structure, DSD tables, exchange schedules) to the base plan —
    the kernel emitter then generates a temporal-block shard kernel through
    its ordinary whole-grid path, no shard-specific emission required.
    """

    def __init__(self, spec: BlockHaloSpec):
        self.spec = spec
        base = spec.plan
        self.base = base
        self.width = spec.width
        self.height = spec.height
        self.boundary = base.boundary
        self.entry = base.entry
        self.buffers = base.buffers
        self.variables = base.variables
        self.activation_order = base.activation_order
        self.halo_tables = dict(spec.tables)
        self._gather_cache: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray] | None
        ] = {}

    def static_dsd(self, op: Operation) -> Dsd | None:
        return self.base.static_dsd(op)

    def exchange_plan(self, op: Operation) -> ExchangePlan | None:
        return self.base.exchange_plan(op)

    def halo_table(self, direction: tuple[int, int]) -> HaloTable:
        key = (direction[0], direction[1])
        table = self.halo_tables.get(key)
        if table is None:
            raise KeyError(
                f"direction {key} has no depth-{self.spec.rounds} halo table"
            )
        return table

    def gather_indices(
        self, direction: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        key = (direction[0], direction[1])
        if key not in self._gather_cache:
            table = self.halo_table(key)
            if table.gatherable:
                self._gather_cache[key] = (
                    np.asarray(table.rows, dtype=np.intp)[:, None],
                    np.asarray(table.cols, dtype=np.intp)[None, :],
                )
            else:
                self._gather_cache[key] = None
        return self._gather_cache[key]

    def memory_per_pe_bytes(self) -> int:
        return self.base.memory_per_pe_bytes()

    def canonical(self) -> dict:
        """The base plan's canonical form plus the block parameters.

        The deep tables are a pure function of (base plan, box, rounds), so
        fingerprinting those three identifies the kernel exactly — each
        (plan, box, R) variant caches once fleet-wide.
        """
        return {
            "base": self.base.canonical(),
            "block": {
                "box": list(self.spec.box),
                "rounds": self.spec.rounds,
                "margin": [self.spec.margin_y, self.spec.margin_x],
            },
        }


class ExecutionPlan:
    """Everything an executor needs to replay one compiled program image.

    Built once per simulation by :func:`ExecutionPlan.compile`; the
    executors only *read* it (several may share one plan — the tiled
    backend's forked shard workers do).
    """

    def __init__(
        self,
        *,
        width: int,
        height: int,
        boundary: BoundaryCondition,
        entry: str,
        buffers: dict[str, int],
        variables: dict[str, float],
        activation_order: tuple[str, ...],
        halo_tables: dict[tuple[int, int], HaloTable],
        static_dsds: dict[Operation, Dsd],
        exchange_plans: dict[Operation, ExchangePlan],
        op_labels: dict[Operation, tuple[str, int]],
    ):
        self.width = width
        self.height = height
        self.boundary = boundary
        self.entry = entry
        self.buffers = buffers
        self.variables = variables
        self.activation_order = activation_order
        self.halo_tables = halo_tables
        #: keyed by the op objects themselves (identity hash) — keeping the
        #: references alive means a plan that outlives its image can never
        #: serve a stale entry for a recycled op address.
        self._static_dsds = static_dsds
        self._exchange_plans = exchange_plans
        #: stable (callable, op-index) labels for the keyed ops, so plan
        #: equality does not depend on object identity.
        self._op_labels = op_labels
        #: tables built on demand for directions no exchange op declared
        #: (host-side probes); kept out of ``halo_tables`` so reads never
        #: change the canonical form of the plan.
        self._probe_tables: dict[tuple[int, int], HaloTable] = {}
        self._gather_cache: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray] | None
        ] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def compile(
        cls,
        image: "ProgramImage",
        width: int,
        height: int,
        boundary: BoundaryCondition | None = None,
    ) -> "ExecutionPlan":
        """Lower a program image (+ grid dims + boundary) into a plan."""
        boundary = boundary if boundary is not None else image.boundary
        static_dsds: dict[Operation, Dsd] = {}
        exchange_plans: dict[Operation, ExchangePlan] = {}
        op_labels: dict[Operation, tuple[str, int]] = {}
        directions: list[tuple[int, int]] = []

        for name in sorted(image.callables):
            callable_op = image.callables[name]
            env: dict[int, Dsd] = {}
            counter = [0]
            for block in _callable_blocks(callable_op):
                _plan_block(
                    block,
                    name,
                    env,
                    counter,
                    static_dsds,
                    exchange_plans,
                    op_labels,
                    directions,
                )

        halo_tables = {
            direction: build_halo_table(boundary, direction, width, height)
            for direction in directions
        }
        return cls(
            width=width,
            height=height,
            boundary=boundary,
            entry=image.entry,
            buffers=dict(image.buffers),
            variables=dict(image.variables),
            activation_order=_activation_order(image),
            halo_tables=halo_tables,
            static_dsds=static_dsds,
            exchange_plans=exchange_plans,
            op_labels=op_labels,
        )

    # ------------------------------------------------------------------ #
    # Lookups (the executors' hot-path surface)
    # ------------------------------------------------------------------ #

    def static_dsd(self, op: Operation) -> Dsd | None:
        """The plan-time resolved DSD of a DSD-producing op, if static."""
        return self._static_dsds.get(op)

    def exchange_plan(self, op: Operation) -> ExchangePlan | None:
        """The parsed schedule of a ``csl.comms_exchange`` op."""
        return self._exchange_plans.get(op)

    def halo_table(self, direction: tuple[int, int]) -> HaloTable:
        """The fold table for a direction (built on demand for directions
        no exchange op declared — host-side probes use this).  On-demand
        tables are memoised separately: a read must never change the
        plan's canonical form."""
        key = (direction[0], direction[1])
        table = self.halo_tables.get(key)
        if table is None:
            table = self._probe_tables.get(key)
        if table is None:
            table = build_halo_table(self.boundary, key, self.width, self.height)
            self._probe_tables[key] = table
        return table

    def gather_indices(
        self, direction: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-axis fancy-index vectors for a whole-grid gather along
        ``direction``, or ``None`` when the direction needs the Dirichlet
        constant-fill path.  Cached as ready-to-broadcast NumPy arrays."""
        key = (direction[0], direction[1])
        if key not in self._gather_cache:
            table = self.halo_table(key)
            if table.gatherable:
                self._gather_cache[key] = (
                    np.asarray(table.rows, dtype=np.intp)[:, None],
                    np.asarray(table.cols, dtype=np.intp)[None, :],
                )
            else:
                self._gather_cache[key] = None
        return self._gather_cache[key]

    def neighbor(
        self, direction: tuple[int, int], x: int, y: int
    ) -> tuple[int, int] | None:
        """The fabric coordinates PE ``(x, y)`` pulls from along
        ``direction``, or ``None`` for a Dirichlet constant fill."""
        table = self.halo_table(direction)
        nx, ny = table.cols[x], table.rows[y]
        if nx is None or ny is None:
            return None
        return nx, ny

    def memory_per_pe_bytes(self) -> int:
        """Bytes of buffer storage each PE holds (float32 columns)."""
        return sum(size * 4 for size in self.buffers.values())

    # ------------------------------------------------------------------ #
    # Determinism / canonical form
    # ------------------------------------------------------------------ #

    def canonical(self) -> dict:
        """A process-stable, JSON-serialisable form of the whole plan.

        Two plans compiled from the same image, grid and boundary must
        canonicalise identically — the determinism tests pin this, and run
        fingerprints rely on :data:`PLAN_VERSION` tracking this shape.
        """
        return {
            "plan_version": PLAN_VERSION,
            "width": self.width,
            "height": self.height,
            "boundary": self.boundary.canonical(),
            "entry": self.entry,
            "buffers": dict(sorted(self.buffers.items())),
            "variables": dict(sorted(self.variables.items())),
            "activation_order": list(self.activation_order),
            "halo": [
                self.halo_tables[direction].canonical()
                for direction in sorted(self.halo_tables)
            ],
            "static_dsds": [
                [list(self._op_labels[key]), dsd.buffer, dsd.offset, dsd.length,
                 dsd.stride]
                for key, dsd in sorted(
                    self._static_dsds.items(),
                    key=lambda item: self._op_labels[item[0]],
                )
            ],
            "exchanges": [
                [list(self._op_labels[key]), plan.canonical()]
                for key, plan in sorted(
                    self._exchange_plans.items(),
                    key=lambda item: self._op_labels[item[0]],
                )
            ],
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionPlan):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:  # canonical-based eq => identity hash is wrong
        return hash((self.width, self.height, self.entry))


# --------------------------------------------------------------------------- #
# Plan-time walkers
# --------------------------------------------------------------------------- #


def _callable_blocks(callable_op: Operation) -> Iterable[Block]:
    """Every block of a callable, outermost first (scf.if regions nested)."""
    stack = [callable_op]
    while stack:
        op = stack.pop()
        for region in op.regions:
            for block in region.blocks:
                yield block
                stack.extend(block.ops)


def _plan_block(
    block: Block,
    callable_name: str,
    env: dict[int, Dsd],
    counter: list[int],
    static_dsds: dict[Operation, Dsd],
    exchange_plans: dict[Operation, ExchangePlan],
    op_labels: dict[Operation, tuple[str, int]],
    directions: list[tuple[int, int]],
) -> None:
    """Abstractly interpret one block for statically-known DSD values."""
    for op in block.ops:
        index = counter[0]
        counter[0] += 1
        if isinstance(op, csl.GetMemDsdOp):
            buffer_attr = op.attributes.get("buffer")
            if isinstance(buffer_attr, StringAttr):
                dsd = Dsd(buffer_attr.data, op.offset, op.length, op.stride)
            elif op.operands and id(op.operands[0]) in env:
                dsd = Dsd(
                    env[id(op.operands[0])].buffer, op.offset, op.length, op.stride
                )
            else:
                continue
            env[id(op.results[0])] = dsd
            static_dsds[op] = dsd
            op_labels[op] = (callable_name, index)
        elif isinstance(op, csl.IncrementDsdOffsetOp):
            base = env.get(id(op.operands[0]))
            # A second operand is a runtime offset (e.g. the chunk base a
            # receive task gets as its wavelet argument) — not static.
            if base is not None and len(op.operands) == 1:
                dsd = base.shifted(op.offset)
                env[id(op.results[0])] = dsd
                static_dsds[op] = dsd
                op_labels[op] = (callable_name, index)
        elif isinstance(op, csl.CommsExchangeOp):
            attributes = op.attributes
            source = env.get(id(op.buffer))
            plan = ExchangePlan(
                source_buffer=source.buffer if source is not None else None,
                source_offset=attributes["src_offset"].value,
                source_length=attributes["src_len"].value,
                chunk_size=attributes["chunk_size"].value,
                num_chunks=op.num_chunks,
                directions=tuple(
                    (d[0], d[1]) for d in op.directions
                ),
                coefficients=(
                    tuple(op.coefficients) if op.coefficients is not None else None
                ),
                receive_buffer=attributes["recv_buffer"].string_value,
                receive_callback=op.recv_callback,
                done_callback=op.done_callback,
            )
            exchange_plans[op] = plan
            op_labels[op] = (callable_name, index)
            for direction in plan.directions:
                if direction not in directions:
                    directions.append(direction)


def _activation_order(image: "ProgramImage") -> tuple[str, ...]:
    """Callables in deterministic reachability order from the entry point.

    Breadth-first over the static references a callable makes — direct
    calls, task activations and exchange callbacks — with unreached
    callables appended in declaration order so the plan names every task.
    """
    order: list[str] = []
    queue: list[str] = [image.entry] if image.entry in image.callables else []
    seen = set(queue)
    while queue:
        name = queue.pop(0)
        order.append(name)
        callable_op = image.callables[name]
        references: list[str] = []
        for block in _callable_blocks(callable_op):
            for op in block.ops:
                if isinstance(op, csl.CallOp):
                    references.append(op.callee)
                elif isinstance(op, csl.ActivateOp):
                    references.append(op.task_name)
                elif isinstance(op, csl.CommsExchangeOp):
                    if op.recv_callback:
                        references.append(op.recv_callback)
                    if op.done_callback:
                        references.append(op.done_callback)
        for reference in references:
            if reference in image.callables and reference not in seen:
                seen.add(reference)
                queue.append(reference)
    for name in image.callables:
        if name not in seen:
            order.append(name)
    return tuple(order)
