"""The runtime communications library (paper Section 5.6), simulator side.

Implements the partitionable, star-shaped, chunked halo exchange: when every
PE of the fabric has scheduled its exchange, the runtime snapshots the data
each PE sends (phase 1), then — per PE — delivers each chunk into the
receive buffer, invokes the receive callback per chunk, and finally invokes
the completion callback (phase 2).  What a PE receives from a direction that
falls off the fabric is decided by the program's
:class:`~repro.frontends.common.BoundaryCondition`: a constant-fill chunk
(``dirichlet``), the chunk of the wrapped-around PE (``periodic``), or the
chunk of the edge-mirrored PE (``reflect``).

The two-phase structure guarantees every PE reads its neighbours' values as
they were when the exchange was scheduled, which is exactly the semantics of
the hardware exchange (all sends precede the local update of the field).

This per-PE delivery serves the ``reference`` execution backend; the
``vectorized`` backend implements the same two-phase protocol — including
the same boundary-condition dispatch — as whole-grid shifted-slice copies
(see :meth:`repro.wse.executors.vectorized.VectorizedExecutor._deliver_round`)
and is validated bit-for-bit against this implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.frontends.common import BoundaryCondition
from repro.wse.pe import ActivatedTask, PendingExchange, ProcessingElement
from repro.wse.plan import HaloTable, build_halo_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.interpreter import PeInterpreter
    from repro.wse.plan import ExecutionPlan


class CommsRuntime:
    """Delivers pending exchanges across the PE grid.

    ``boundary`` selects what off-fabric directions contribute; it defaults
    to the historical Dirichlet-zero halo.  ``plan`` optionally supplies the
    pre-compiled per-direction fold tables of an
    :class:`~repro.wse.plan.ExecutionPlan`; without one the runtime builds
    (and memoises) equivalent tables itself, so directly-constructed
    runtimes keep working.  The grid must be rectangular — a ragged row
    list would silently truncate or over-index delivery, so it is rejected
    up front.
    """

    def __init__(
        self,
        grid: list[list[ProcessingElement]],
        boundary: BoundaryCondition | None = None,
        plan: "ExecutionPlan | None" = None,
    ):
        self.grid = grid
        self.height = len(grid)
        self.width = len(grid[0]) if grid else 0
        self.boundary = (
            boundary if boundary is not None else BoundaryCondition.dirichlet()
        )
        self.plan = plan
        self._local_tables: dict[tuple[int, int], "HaloTable"] = {}
        for y, row in enumerate(grid):
            if len(row) != self.width:
                raise ValueError(
                    f"ragged PE grid: row {y} has {len(row)} PEs but row 0 "
                    f"has {self.width}; CommsRuntime requires a rectangular "
                    f"{self.width}x{self.height} fabric"
                )

    # ------------------------------------------------------------------ #

    def _halo_table(self, direction: tuple[int, int]) -> "HaloTable":
        if self.plan is not None:
            return self.plan.halo_table(direction)
        key = (direction[0], direction[1])
        table = self._local_tables.get(key)
        if table is None:
            table = build_halo_table(self.boundary, key, self.width, self.height)
            self._local_tables[key] = table
        return table

    def _neighbor_chunk(
        self,
        pe: ProcessingElement,
        exchange: PendingExchange,
        direction: tuple[int, int],
        chunk_index: int,
    ) -> np.ndarray:
        """The chunk of the neighbour's column sent towards ``pe``.

        An access at offset ``(+1, 0)`` reads the value of the eastern
        neighbour, so the data is pulled from PE ``(x+1, y)``.  The
        boundary folding was resolved ahead of time into the per-direction
        halo tables: ``periodic``/``reflect`` entries name the wrapped or
        mirrored PE whose chunk is delivered instead, while ``dirichlet``
        off-fabric entries synthesise a constant-fill chunk.
        """
        start = exchange.source_offset + chunk_index * exchange.chunk_size
        stop = start + exchange.chunk_size
        table = self._halo_table(direction)
        nx, ny = table.cols[pe.x], table.rows[pe.y]
        if nx is not None and ny is not None:
            neighbor = self.grid[ny][nx]
            source = neighbor.buffers[exchange.source_buffer]
            return source[start:stop].copy()
        return np.full(
            exchange.chunk_size, table.fill_value, dtype=np.float32
        )

    # ------------------------------------------------------------------ #

    def deliver_round(self, interpreters: dict[tuple[int, int], "PeInterpreter"]) -> int:
        """Deliver every pending exchange.  Returns the number delivered."""
        pending: list[tuple[ProcessingElement, PendingExchange]] = []
        for row in self.grid:
            for pe in row:
                if pe.pending_exchange is not None:
                    pending.append((pe, pe.pending_exchange))
        if not pending:
            return 0

        # Phase 1: snapshot everything that will be received, before any
        # callback mutates a buffer.
        staged: dict[tuple[int, int], list[np.ndarray]] = {}
        for pe, exchange in pending:
            chunks: list[np.ndarray] = []
            for chunk_index in range(exchange.num_chunks):
                parts = []
                for slot, direction in enumerate(exchange.directions):
                    data = self._neighbor_chunk(pe, exchange, direction, chunk_index)
                    if exchange.coefficients is not None:
                        data = data * np.float32(exchange.coefficients[slot])
                    parts.append(data)
                chunks.append(np.concatenate(parts) if parts else np.zeros(0))
                pe.counters["wavelets_sent"] += exchange.chunk_size * len(
                    exchange.directions
                )
            staged[(pe.x, pe.y)] = chunks

        # Phase 2: per PE, write chunks, run the receive callback per chunk,
        # then queue the completion callback.
        for pe, exchange in pending:
            pe.pending_exchange = None
            interpreter = interpreters[(pe.x, pe.y)]
            receive_buffer = pe.buffers[exchange.receive_buffer]
            for chunk_index, chunk_data in enumerate(staged[(pe.x, pe.y)]):
                receive_buffer[: chunk_data.shape[0]] = chunk_data
                if exchange.receive_callback:
                    interpreter.run_callable(
                        exchange.receive_callback,
                        argument=chunk_index * exchange.chunk_size,
                    )
            if exchange.done_callback:
                pe.activate(ActivatedTask(exchange.done_callback))
        return len(pending)
