"""The runtime communications library (paper Section 5.6), simulator side.

Implements the partitionable, star-shaped, chunked halo exchange: when every
PE of the fabric has scheduled its exchange, the runtime snapshots the data
each PE sends (phase 1), then — per PE — delivers each chunk into the
receive buffer, invokes the receive callback per chunk, and finally invokes
the completion callback (phase 2).  PEs outside the grid contribute zeros
(Dirichlet-zero halo).

The two-phase structure guarantees every PE reads its neighbours' values as
they were when the exchange was scheduled, which is exactly the semantics of
the hardware exchange (all sends precede the local update of the field).

This per-PE delivery serves the ``reference`` execution backend; the
``vectorized`` backend implements the same two-phase protocol as whole-grid
shifted-slice copies (see
:meth:`repro.wse.executors.vectorized.VectorizedExecutor._deliver_round`)
and is validated bit-for-bit against this implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.wse.pe import ActivatedTask, PendingExchange, ProcessingElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.wse.interpreter import PeInterpreter


class CommsRuntime:
    """Delivers pending exchanges across the PE grid."""

    def __init__(self, grid: list[list[ProcessingElement]]):
        self.grid = grid
        self.height = len(grid)
        self.width = len(grid[0]) if grid else 0

    # ------------------------------------------------------------------ #

    def _neighbor_chunk(
        self,
        pe: ProcessingElement,
        exchange: PendingExchange,
        direction: tuple[int, int],
        chunk_index: int,
    ) -> np.ndarray:
        """The chunk of the neighbour's column sent towards ``pe``.

        An access at offset ``(+1, 0)`` reads the value of the eastern
        neighbour, so the data is pulled from PE ``(x+1, y)``.
        """
        nx, ny = pe.x + direction[0], pe.y + direction[1]
        start = exchange.source_offset + chunk_index * exchange.chunk_size
        stop = start + exchange.chunk_size
        if 0 <= nx < self.width and 0 <= ny < self.height:
            neighbor = self.grid[ny][nx]
            source = neighbor.buffers[exchange.source_buffer]
            return source[start:stop].copy()
        return np.zeros(exchange.chunk_size, dtype=np.float32)

    # ------------------------------------------------------------------ #

    def deliver_round(self, interpreters: dict[tuple[int, int], "PeInterpreter"]) -> int:
        """Deliver every pending exchange.  Returns the number delivered."""
        pending: list[tuple[ProcessingElement, PendingExchange]] = []
        for row in self.grid:
            for pe in row:
                if pe.pending_exchange is not None:
                    pending.append((pe, pe.pending_exchange))
        if not pending:
            return 0

        # Phase 1: snapshot everything that will be received, before any
        # callback mutates a buffer.
        staged: dict[tuple[int, int], list[np.ndarray]] = {}
        for pe, exchange in pending:
            chunks: list[np.ndarray] = []
            for chunk_index in range(exchange.num_chunks):
                parts = []
                for slot, direction in enumerate(exchange.directions):
                    data = self._neighbor_chunk(pe, exchange, direction, chunk_index)
                    if exchange.coefficients is not None:
                        data = data * np.float32(exchange.coefficients[slot])
                    parts.append(data)
                chunks.append(np.concatenate(parts) if parts else np.zeros(0))
                pe.counters["wavelets_sent"] += exchange.chunk_size * len(
                    exchange.directions
                )
            staged[(pe.x, pe.y)] = chunks

        # Phase 2: per PE, write chunks, run the receive callback per chunk,
        # then queue the completion callback.
        for pe, exchange in pending:
            pe.pending_exchange = None
            interpreter = interpreters[(pe.x, pe.y)]
            receive_buffer = pe.buffers[exchange.receive_buffer]
            for chunk_index, chunk_data in enumerate(staged[(pe.x, pe.y)]):
                receive_buffer[: chunk_data.shape[0]] = chunk_data
                if exchange.receive_callback:
                    interpreter.run_callable(
                        exchange.receive_callback,
                        argument=chunk_index * exchange.chunk_size,
                    )
            if exchange.done_callback:
                pe.activate(ActivatedTask(exchange.done_callback))
        return len(pending)
