"""The fabric simulator facade: a 2-D grid of PEs executing the generated
program through a pluggable execution backend.

Execution proceeds in *delivery rounds*: every PE drains its task queue until
it either halts (control returned to the host) or blocks waiting on a
scheduled exchange; the runtime then delivers all pending exchanges at once
and the next round begins.  This models the lockstep progress of an SPMD
stencil program on the fabric while remaining deterministic and fast enough
to validate generated programs bit-for-bit against the NumPy reference.

*How* the rounds are executed is the backend's business
(:mod:`repro.wse.executors`): the ``reference`` backend interprets the
program once per PE, the ``vectorized`` backend interprets it once for the
whole fabric over batched ``(height, width, z)`` buffers.  Both expose the
same ``load_field`` / ``execute`` / ``read_field`` / ``statistics`` surface
through this facade and produce bit-identical fields and statistics.
"""

from __future__ import annotations

import numpy as np

from repro.dialects import csl
from repro.ir.attributes import IntAttr
from repro.wse.executors import (
    SimulationStatistics,
    default_executor_name,
    executor_by_name,
)
from repro.wse.interpreter import ProgramImage
from repro.wse.plan import ExecutionPlan

__all__ = ["SimulationStatistics", "WseSimulator"]


class WseSimulator:
    """Functional simulator of the WSE fabric for a compiled program.

    ``executor`` selects the execution backend by registry name; when omitted
    the ``REPRO_EXECUTOR`` environment variable and then the built-in default
    decide.  ``width``/``height`` default to the grid the program was
    compiled for; explicit overrides must match any grid extent recorded in
    the program image, because the generated layout (border masks, exchange
    patterns) is specialised to it.

    The program may be a csl-ir module *or* an already-built
    :class:`ProgramImage` — the CSL text front-door (:mod:`repro.csl`)
    produces images directly, and they execute through the same plan and
    backends as pipeline-generated modules.
    """

    def __init__(
        self,
        program_module: "csl.CslModuleOp | ProgramImage",
        width: int | None = None,
        height: int | None = None,
        executor: str | None = None,
    ):
        if isinstance(program_module, ProgramImage):
            self.image = program_module
            program_module = self.image.module
        else:
            self.image = ProgramImage(program_module)
        self.width = self._validated_extent("width", width, program_module)
        self.height = self._validated_extent("height", height, program_module)
        self.executor_name = (
            executor if executor is not None else default_executor_name()
        )
        executor_cls = executor_by_name(self.executor_name)
        # Lower the image into the backend-neutral execution plan exactly
        # once; every backend replays the same plan.
        self.plan = ExecutionPlan.compile(self.image, self.width, self.height)
        self._executor = executor_cls(
            self.image, self.width, self.height, self.plan
        )

    def _validated_extent(
        self,
        axis: str,
        override: int | None,
        program_module: "csl.CslModuleOp",
    ) -> int:
        """The grid extent along ``axis``, validating explicit overrides.

        A program compiled for one grid mis-executes silently on another (the
        layout metaprogram bakes the extent into border masks and exchange
        patterns), so a mismatching override is a hard error.
        """
        declared_attr = program_module.attributes.get(axis)
        declared = (
            declared_attr.value if isinstance(declared_attr, IntAttr) else None
        )
        if override is None:
            return declared if declared is not None else 1
        if override < 1:
            raise ValueError(f"WseSimulator {axis} must be positive, got {override}")
        if declared is not None and override != declared:
            raise ValueError(
                f"WseSimulator {axis}={override} does not match the program "
                f"image's grid {axis} {declared}: the program was compiled for "
                f"a {self.image.width}x{self.image.height} fabric. Recompile "
                f"with PipelineOptions(grid_{axis}={override}, ...) or drop "
                f"the override."
            )
        return override

    # ------------------------------------------------------------------ #
    # Host-side data movement (the memcpy library's role)
    # ------------------------------------------------------------------ #

    @property
    def executor(self):
        """The active execution backend instance."""
        return self._executor

    @property
    def boundary(self):
        """The boundary condition compiled into the program image (every
        backend implements it identically, bit for bit)."""
        return self.image.boundary

    @property
    def grid(self):
        """The fabric as rows of per-PE state views."""
        return self._executor.grid

    @property
    def statistics(self) -> SimulationStatistics:
        return self._executor.statistics

    def pe(self, x: int, y: int):
        return self._executor.pe(x, y)

    def load_field(self, name: str, columns: np.ndarray) -> None:
        """Scatter a ``(width, height, z)`` array of columns onto the PEs."""
        self._executor.load_field(name, columns)

    def read_field(self, name: str) -> np.ndarray:
        """Gather a field back into a ``(width, height, z)`` array."""
        return self._executor.read_field(name)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        """Invoke the host-callable entry point on every PE."""
        self._executor.launch(entry)

    def run(self, max_rounds: int = 1_000_000) -> SimulationStatistics:
        """Run delivery rounds until every PE has halted."""
        return self._executor.run(max_rounds)

    def execute(self, entry: str | None = None) -> SimulationStatistics:
        """Convenience: launch then run to completion."""
        return self._executor.execute(entry)
