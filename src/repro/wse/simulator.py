"""The fabric simulator: a 2-D grid of PEs executing the generated program.

Execution proceeds in *delivery rounds*: every PE drains its task queue until
it either halts (control returned to the host) or blocks waiting on a
scheduled exchange; the runtime then delivers all pending exchanges at once
and the next round begins.  This models the lockstep progress of an SPMD
stencil program on the fabric while remaining deterministic and fast enough
to validate generated programs bit-for-bit against the NumPy reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dialects import csl
from repro.ir.exceptions import InterpretationError
from repro.wse.interpreter import PeInterpreter, ProgramImage
from repro.wse.pe import ProcessingElement
from repro.wse.runtime import CommsRuntime


@dataclass
class SimulationStatistics:
    """Aggregate activity counters of one simulation run."""

    rounds: int = 0
    tasks_run: int = 0
    exchanges: int = 0
    dsd_ops: int = 0
    dsd_elements: int = 0
    wavelets_sent: int = 0
    max_pe_memory_bytes: int = 0


class WseSimulator:
    """Functional simulator of the WSE fabric for a compiled program."""

    def __init__(
        self,
        program_module: "csl.CslModuleOp",
        width: int | None = None,
        height: int | None = None,
    ):
        self.image = ProgramImage(program_module)
        self.width = width if width is not None else self.image.width
        self.height = height if height is not None else self.image.height
        self.grid: list[list[ProcessingElement]] = [
            [ProcessingElement(x, y) for x in range(self.width)]
            for y in range(self.height)
        ]
        self.interpreters: dict[tuple[int, int], PeInterpreter] = {}
        for row in self.grid:
            for pe in row:
                interpreter = PeInterpreter(self.image, pe)
                interpreter.initialise()
                self.interpreters[(pe.x, pe.y)] = interpreter
        self.runtime = CommsRuntime(self.grid)
        self.statistics = SimulationStatistics()

    # ------------------------------------------------------------------ #
    # Host-side data movement (the memcpy library's role)
    # ------------------------------------------------------------------ #

    def pe(self, x: int, y: int) -> ProcessingElement:
        return self.grid[y][x]

    def _field_buffer(self, pe: ProcessingElement, name: str) -> np.ndarray:
        """A PE's buffer for ``name``, or a diagnosable error if absent."""
        try:
            return pe.buffers[name]
        except KeyError:
            available = ", ".join(sorted(pe.buffers)) or "<none>"
            raise KeyError(
                f"unknown field '{name}' on PE ({pe.x}, {pe.y}); "
                f"available buffers: {available}"
            ) from None

    def load_field(self, name: str, columns: np.ndarray) -> None:
        """Scatter a ``(width, height, z)`` array of columns onto the PEs."""
        if columns.shape[:2] != (self.width, self.height):
            raise ValueError(
                f"expected columns of shape ({self.width}, {self.height}, z), "
                f"got {columns.shape}"
            )
        for y in range(self.height):
            for x in range(self.width):
                buffer = self._field_buffer(self.pe(x, y), name)
                column = columns[x, y]
                if column.shape[0] != buffer.shape[0]:
                    raise ValueError(
                        f"column length {column.shape[0]} does not match buffer "
                        f"'{name}' of length {buffer.shape[0]}"
                    )
                buffer[:] = column.astype(np.float32)

    def read_field(self, name: str) -> np.ndarray:
        """Gather a field back into a ``(width, height, z)`` array."""
        z_length = self._field_buffer(self.pe(0, 0), name).shape[0]
        result = np.zeros((self.width, self.height, z_length), dtype=np.float32)
        for y in range(self.height):
            for x in range(self.width):
                result[x, y, :] = self._field_buffer(self.pe(x, y), name)
        return result

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(self, entry: str | None = None) -> None:
        """Invoke the host-callable entry point on every PE."""
        entry_name = entry if entry is not None else self.image.entry
        for interpreter in self.interpreters.values():
            interpreter.run_callable(entry_name)

    def run(self, max_rounds: int = 1_000_000) -> SimulationStatistics:
        """Run delivery rounds until every PE has halted."""
        for round_index in range(max_rounds):
            for interpreter in self.interpreters.values():
                interpreter.run_pending_tasks()
            if all(pe.halted or pe.is_idle for row in self.grid for pe in row):
                break
            delivered = self.runtime.deliver_round(self.interpreters)
            self.statistics.rounds += 1
            if delivered == 0:
                raise InterpretationError(
                    "deadlock: PEs are neither halted nor waiting on an exchange"
                )
        else:
            raise InterpretationError(f"simulation exceeded {max_rounds} rounds")

        self._collect_statistics()
        return self.statistics

    def execute(self, entry: str | None = None) -> SimulationStatistics:
        """Convenience: launch then run to completion."""
        self.launch(entry)
        return self.run()

    # ------------------------------------------------------------------ #

    def _collect_statistics(self) -> None:
        stats = self.statistics
        for row in self.grid:
            for pe in row:
                stats.tasks_run += pe.counters["tasks_run"]
                stats.exchanges += pe.counters["exchanges"]
                stats.dsd_ops += pe.counters["dsd_ops"]
                stats.dsd_elements += pe.counters["dsd_elements"]
                stats.wavelets_sent += pe.counters["wavelets_sent"]
                stats.max_pe_memory_bytes = max(
                    stats.max_pe_memory_bytes, pe.memory_in_use()
                )
