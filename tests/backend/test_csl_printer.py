"""Tests for CSL code generation, the runtime library and LoC accounting."""

import pytest

from repro.backend.csl_printer import print_csl_module, print_csl_sources
from repro.backend.loc import count_lines, generated_loc, loc_report
from repro.backend.runtime_library import runtime_library_loc, runtime_library_source
from repro.benchmarks import jacobian_benchmark
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program


@pytest.fixture(scope="module")
def compiled():
    program = jacobian_benchmark.program(nx=5, ny=5, nz=16, time_steps=2)
    return compile_stencil_program(
        program, PipelineOptions(grid_width=5, grid_height=5, num_chunks=2)
    )


class TestCslPrinter:
    def test_program_contains_tasks_and_builtins(self, compiled):
        text = print_csl_module(compiled.program_module)
        assert "task for_cond0(" in text
        assert "fn f_main()" in text
        assert "@fmacs(" in text or "@fmuls(" in text
        assert "@fadds(" in text
        assert "stencil_comms.communicate(" in text
        assert "@zeros(" in text
        assert "@bind_local_task(" in text

    def test_layout_contains_rectangle_and_tile_code(self, compiled):
        text = print_csl_module(compiled.layout_module)
        assert "@set_rectangle(5, 5);" in text
        assert "@set_tile_code(x, y," in text
        assert "while (x <" in text

    def test_sources_named_after_program(self, compiled):
        sources = print_csl_sources(compiled.csl_modules)
        assert set(sources) == {"jacobian.csl", "jacobian_layout.csl"}

    def test_no_unprinted_operations(self, compiled):
        text = print_csl_module(compiled.program_module)
        assert "<unprinted operation" not in text

    def test_printer_is_deterministic(self, compiled):
        assert print_csl_module(compiled.program_module) == print_csl_module(
            compiled.program_module
        )


class TestRuntimeLibrary:
    def test_wse2_variant_has_self_transmit_route(self):
        source = runtime_library_source("wse2")
        assert ".tx = .{ EAST, RAMP }" in source

    def test_wse3_variant_drops_self_transmit(self):
        source = runtime_library_source("wse3")
        assert ".tx = .{ EAST }" in source
        assert ".tx = .{ EAST, RAMP }" not in source

    def test_library_size_is_substantial(self):
        assert runtime_library_loc("wse2") > 150

    def test_library_declares_public_entry(self):
        assert "fn communicate(" in runtime_library_source("wse2")


class TestLocAccounting:
    def test_count_lines_skips_blank_and_comments(self):
        assert count_lines("// comment\n\ncode();\n  more();\n") == 2

    def test_generated_loc_ordering(self, compiled):
        kernel_only, entire = generated_loc(compiled)
        assert 0 < kernel_only < entire

    def test_loc_report_dsl_smaller_than_kernel(self, compiled):
        report = loc_report(jacobian_benchmark, compiled)
        assert report.dsl_ours < report.csl_kernel_only
