"""The five paper benchmarks compile through the pipeline and run correctly
on the fabric simulator at reduced problem sizes."""

import numpy as np
import pytest

from repro.benchmarks import BENCHMARKS, benchmark_by_name
from repro.tests_support import simulate_against_reference  # noqa: F401  (fixture helper below)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program


class TestBenchmarkDefinitions:
    def test_registry_has_five_benchmarks(self):
        assert len(BENCHMARKS) == 5
        names = {benchmark.name for benchmark in BENCHMARKS}
        assert names == {"Jacobian", "Diffusion", "Acoustic", "Seismic", "UVKBE"}

    def test_lookup_by_name_is_case_insensitive(self):
        assert benchmark_by_name("jacobian").frontend == "Flang"
        with pytest.raises(KeyError):
            benchmark_by_name("does-not-exist")

    def test_paper_parameters(self):
        assert benchmark_by_name("Jacobian").z_dim == 900
        assert benchmark_by_name("Jacobian").iterations == 100_000
        assert benchmark_by_name("Diffusion").z_dim == 704
        assert benchmark_by_name("Acoustic").z_dim == 604
        assert benchmark_by_name("Seismic").z_dim == 450
        assert benchmark_by_name("Seismic").stencil_points == 25
        assert benchmark_by_name("UVKBE").iterations == 1

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_program_builds(self, bench):
        program = bench.program(nx=8, ny=8, nz=16, time_steps=1)
        assert program.fields
        assert program.equations

    def test_uvkbe_has_four_fields_two_equations(self):
        program = benchmark_by_name("UVKBE").program(nx=4, ny=4, nz=8, time_steps=1)
        assert len(program.fields) == 4
        assert len(program.equations) == 2

    def test_seismic_is_25_point(self):
        program = benchmark_by_name("Seismic").program(nx=10, ny=10, nz=12, time_steps=1)
        offsets = {access.offset for access in program.equations[0].expression.accesses()}
        assert len(offsets) == 25


class TestBenchmarkCompilation:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_compiles_to_csl_ir(self, bench):
        radius = 4 if bench.name == "Seismic" else 2
        nx = ny = max(4, 2 * radius + 1)
        program = bench.program(nx=nx, ny=ny, nz=16, time_steps=1)
        result = compile_stencil_program(
            program, PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=2)
        )
        assert result.program_module is not None
        assert result.layout_module is not None


class TestBenchmarkCorrectness:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_simulated_result_matches_reference(self, bench):
        from repro.tests_support import simulate_against_reference

        radius = 4 if bench.name == "Seismic" else 2
        nx = ny = 2 * radius + 1
        steps = 1 if bench.name == "Seismic" else 2
        program = bench.program(nx=nx, ny=ny, nz=12, time_steps=steps)
        simulated, reference = simulate_against_reference(
            program, PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=2)
        )
        for name in simulated:
            np.testing.assert_allclose(
                simulated[name], reference[name], rtol=2e-5, atol=1e-5,
                err_msg=f"field '{name}' of benchmark {bench.name} diverged",
            )


class TestBoundaryWorkloadRegistry:
    """The boundary workloads ride alongside the paper's five kernels."""

    def test_paper_tuple_is_untouched_and_extended_tuple_adds_two(self):
        from repro.benchmarks import ALL_BENCHMARKS, BOUNDARY_BENCHMARKS

        assert len(BOUNDARY_BENCHMARKS) == 2
        assert len(ALL_BENCHMARKS) == len(BENCHMARKS) + 2
        names = {benchmark.name for benchmark in BOUNDARY_BENCHMARKS}
        assert names == {"Advection", "ReflectiveHeat"}

    def test_lookup_finds_boundary_workloads(self):
        assert benchmark_by_name("advection").boundary == "periodic"
        assert benchmark_by_name("reflectiveheat").boundary == "reflect"

    def test_paper_benchmarks_declare_dirichlet(self):
        assert all(benchmark.boundary == "dirichlet" for benchmark in BENCHMARKS)

    @pytest.mark.parametrize(
        "name", ["Advection", "ReflectiveHeat"], ids=str.lower
    )
    def test_boundary_workloads_compile(self, name):
        bench = benchmark_by_name(name)
        program = bench.program(nx=5, ny=5, nz=10, time_steps=1)
        assert program.boundary.kind == bench.boundary
        result = compile_stencil_program(
            program, PipelineOptions(grid_width=5, grid_height=5, num_chunks=2)
        )
        assert result.program_module is not None
