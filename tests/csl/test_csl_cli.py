"""The ``python -m repro.csl`` command line: parse, dump, diff."""

import io
import os

from repro.csl.__main__ import main as csl_main

HANDWRITTEN_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "handwritten"
)


class TestParseVerb:
    def test_parse_directory(self):
        out = io.StringIO()
        assert csl_main(["parse", "--dir", HANDWRITTEN_DIR], out=out) == 0
        text = out.getvalue()
        assert "seismic25: program, grid 9x9" in text
        assert "seismic25_layout: layout" in text

    def test_parse_error_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.csl"
        bad.write_text("fn broken( {\n")
        assert csl_main(["parse", str(bad)], out=io.StringIO()) == 1
        err = capsys.readouterr().err
        assert "bad.csl:1:12" in err


class TestDumpVerb:
    def test_dump_reprints_csl(self):
        out = io.StringIO()
        assert csl_main(["dump", "--dir", HANDWRITTEN_DIR], out=out) == 0
        text = out.getvalue()
        assert "stencil_comms.communicate(" in text
        assert "@set_rectangle(9, 9);" in text

    def test_dump_canonical_json(self):
        out = io.StringIO()
        assert (
            csl_main(["dump", "--dir", HANDWRITTEN_DIR, "--canonical"], out=out)
            == 0
        )
        text = out.getvalue()
        assert '"buffers"' in text
        assert '"receive_buffer": 256' in text


class TestDiffVerb:
    def test_diff_against_generated_seismic(self):
        out = io.StringIO()
        code = csl_main(
            [
                "diff",
                "--csl",
                HANDWRITTEN_DIR,
                "--benchmark",
                "Seismic",
                "--grid",
                "9x9",
                "--nz",
                "16",
                "--time-steps",
                "2",
                "--num-chunks",
                "1",
                "--fields",
                "u,v",
                "--executors",
                "reference",
            ],
            out=out,
        )
        assert code == 0
        assert "FIELD-BY-FIELD AGREEMENT" in out.getvalue()
