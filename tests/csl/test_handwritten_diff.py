"""The handwritten seismic kernel: parses, runs on every executor with
byte-identical fields, and agrees field-by-field with the generated code."""

import os

import numpy as np
import pytest

from repro.backend.csl_printer import print_csl_sources
from repro.benchmarks import seismic_benchmark
from repro.csl import diff_images, parse_csl_dir, parse_csl_sources
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors import available_executors
from repro.wse.simulator import WseSimulator

HANDWRITTEN_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "handwritten"
)


@pytest.fixture(scope="module")
def handwritten_image():
    return parse_csl_dir(HANDWRITTEN_DIR).image()


@pytest.fixture(scope="module")
def generated_image(handwritten_image):
    program = seismic_benchmark.program(
        nx=handwritten_image.width,
        ny=handwritten_image.height,
        nz=16,
        time_steps=2,
    )
    options = PipelineOptions(
        grid_width=handwritten_image.width,
        grid_height=handwritten_image.height,
        num_chunks=1,
    )
    compiled = compile_stencil_program(program, options)
    return parse_csl_sources(print_csl_sources(compiled.csl_modules)).image()


class TestHandwrittenKernel:
    def test_parses_with_layout_metadata(self, handwritten_image):
        image = handwritten_image
        assert image.module.sym_name == "seismic25"
        assert (image.width, image.height) == (9, 9)
        assert image.entry == "f_main"
        assert image.buffers["u"] == 24
        assert image.buffers["receive_buffer"] == 256

    def test_all_executors_byte_identical(self, handwritten_image):
        image = handwritten_image
        rng = np.random.default_rng(7)
        inputs = {
            name: rng.uniform(
                -1.0, 1.0, (image.width, image.height, size)
            ).astype(np.float32)
            for name, size in sorted(image.buffers.items())
        }
        baseline = None
        for executor in available_executors():
            simulator = WseSimulator(image, executor=executor)
            for name, columns in inputs.items():
                simulator.load_field(name, columns.copy())
            simulator.execute()
            fields = {
                name: simulator.read_field(name).tobytes()
                for name in sorted(image.buffers)
            }
            if baseline is None:
                baseline = fields
            else:
                assert fields == baseline, f"{executor} diverges"

    def test_agrees_with_generated(self, handwritten_image, generated_image):
        report = diff_images(
            generated_image,
            handwritten_image,
            fields=("u", "v"),
            executors=("reference", "vectorized"),
            label_a="generated",
            label_b="handwritten",
        )
        assert report.agreed, report.format()
        assert "FIELD-BY-FIELD AGREEMENT" in report.format()

    def test_diff_detects_divergence(self, handwritten_image):
        """The harness is not vacuous: a perturbed kernel must diverge."""
        sources = {}
        for entry in sorted(os.listdir(HANDWRITTEN_DIR)):
            if entry.endswith(".csl"):
                with open(os.path.join(HANDWRITTEN_DIR, entry)) as handle:
                    sources[entry] = handle.read()
        perturbed_text = sources["seismic25.csl"].replace(
            "const dt2 = 0.001;", "const dt2 = 0.002;"
        )
        assert perturbed_text != sources["seismic25.csl"]
        sources["seismic25.csl"] = perturbed_text
        perturbed = parse_csl_sources(sources).image()
        # seed u as well: v's update is u + dt^2 * laplacian(u), so a
        # perturbed dt2 only shows up when u carries data
        report = diff_images(
            handwritten_image,
            perturbed,
            fields=("u", "v"),
            executors=("reference",),
        )
        assert not report.agreed
        assert "DIVERGENCE DETECTED" in report.format()
