"""Lexer tests: token stream shape and precise source locations."""

import pytest

from repro.csl.lexer import CslSyntaxError, tokenize


class TestTokenize:
    def test_idents_builtins_numbers_strings(self):
        tokens = tokenize('const x = @zeros([16]f32); // comment\nparam s = "hi";')
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert "@zeros" in texts
        assert "16" in texts
        assert "hi" in texts  # string token text is unquoted
        assert "// comment" not in " ".join(texts)

    def test_locations_are_one_based(self):
        tokens = tokenize("a\n  b", "k.csl")
        a, b = tokens[0], tokens[1]
        assert (a.loc.line, a.loc.col) == (1, 1)
        assert (b.loc.line, b.loc.col) == (2, 3)
        assert str(b.loc) == "k.csl:2:3"

    def test_two_char_punctuators(self):
        tokens = tokenize("x += 1; y -> z; a <= b; c == d; e != f;")
        puncts = [t.text for t in tokens if t.kind == "punct"]
        for symbol in ("+=", "->", "<=", "==", "!="):
            assert symbol in puncts

    def test_float_and_exponent_numbers(self):
        tokens = tokenize("0.0253968254 -1.5e-3 42")
        numbers = [t.text for t in tokens if t.kind == "number"]
        assert numbers == ["0.0253968254", "1.5e-3", "42"]

    def test_rejected_character_names_location(self):
        with pytest.raises(CslSyntaxError) as info:
            tokenize("const ok = 1;\nconst bad = 2 # 3;", "bad.csl")
        assert "bad.csl:2:15" in str(info.value)

    def test_unterminated_string(self):
        with pytest.raises(CslSyntaxError) as info:
            tokenize('const s = "never closed;', "s.csl")
        assert "s.csl:1:11" in str(info.value)
