"""Golden parser/lowering diagnostics: every rejection names file:line:col
and the offending token, so a failing handwritten kernel points at source."""

import pytest

from repro.csl import CslDiagnosticError, CslSyntaxError, parse_csl_program
from repro.csl.lower import CslLoweringError

MINIMAL = """\
fn f_main() void {
  return;
}
comptime { @export_symbol(f_main, "f_main"); }
"""


def diagnostic(text, file="kernel.csl"):
    with pytest.raises(CslDiagnosticError) as info:
        parse_csl_program(text, file)
    return info.value


class TestSyntaxDiagnostics:
    def test_unknown_builtin_names_token_and_location(self):
        error = diagnostic(
            "fn f_main() void {\n  @frobnicate(1);\n  return;\n}\n"
        )
        assert str(error) == (
            "kernel.csl:2:3: unknown builtin '@frobnicate' (at '@frobnicate')"
        )
        assert isinstance(error, CslSyntaxError)
        assert (error.loc.line, error.loc.col) == (2, 3)

    def test_unterminated_block_names_opening_brace(self):
        error = diagnostic("fn f_main() void {\n  return;\n")
        assert "block opened at 1:18 was never closed" in str(error)
        assert error.token == "{"

    def test_bad_dsd_kind(self):
        error = diagnostic(
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem4d_dsd, "
            ".{ .tensor_access = |i|{16} -> u[i] });\n"
            "  return;\n}\n"
        )
        assert "unsupported DSD kind 'mem4d_dsd'" in str(error)
        assert "only mem1d_dsd is supported" in str(error)
        assert str(error).startswith("kernel.csl:2:")

    def test_nonpositive_dsd_length(self):
        error = diagnostic(
            "var u = @zeros([16]f32);\n"
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem1d_dsd, "
            ".{ .tensor_access = |i|{0} -> u[i] });\n"
            "  return;\n}\n"
        )
        assert "DSD length must be a positive integer" in str(error)

    def test_builtin_arity_mismatch(self):
        error = diagnostic(
            "var u = @zeros([4]f32);\n"
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem1d_dsd, "
            ".{ .tensor_access = |i|{4} -> u[i] });\n"
            "  @fadds(d, d);\n"
            "  return;\n}\n"
        )
        assert "@fadds expects 3 arguments, got 2" in str(error)
        assert str(error).startswith("kernel.csl:4:3")

    def test_communicate_missing_field(self):
        error = diagnostic(
            "var u = @zeros([4]f32);\n"
            "var rb = @zeros([4]f32);\n"
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem1d_dsd, "
            ".{ .tensor_access = |i|{4} -> u[i] });\n"
            "  stencil_comms.communicate(&d, .{ .num_chunks = 1 });\n"
            "  return;\n}\n"
        )
        assert "communicate call missing field '.chunk_size'" in str(error)

    def test_communicate_unknown_field(self):
        error = diagnostic(
            "var u = @zeros([4]f32);\n"
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem1d_dsd, "
            ".{ .tensor_access = |i|{4} -> u[i] });\n"
            "  stencil_comms.communicate(&d, .{ .warp_speed = 9 });\n"
            "  return;\n}\n"
        )
        assert "unknown communicate field '.warp_speed'" in str(error)


class TestLoweringDiagnostics:
    def test_undefined_name(self):
        error = diagnostic(
            "var step : i32 = 0;\n"
            "fn f_main() void {\n"
            "  const t = step + missing;\n"
            "  return;\n}\n"
        )
        assert isinstance(error, CslLoweringError)
        assert "use of undefined name 'missing'" in str(error)
        assert str(error).startswith("kernel.csl:3:")

    def test_unknown_buffer_in_get_dsd(self):
        error = diagnostic(
            "fn f_main() void {\n"
            "  const d = @get_dsd(mem1d_dsd, "
            ".{ .tensor_access = |i|{4} -> ghost[i] });\n"
            "  return;\n}\n"
        )
        assert "@get_dsd references unknown buffer 'ghost'" in str(error)

    def test_unbound_task(self):
        error = diagnostic(
            "task orphan() void {\n  return;\n}\n" + MINIMAL
        )
        assert "task 'orphan' has no @bind_local_task binding" in str(error)

    def test_activate_of_unbound_id(self):
        error = diagnostic(
            "fn f_main() void {\n"
            "  @activate(@get_local_task_id(42));\n"
            "  return;\n}\n"
        )
        assert "@activate of task id 42" in str(error)

    def test_call_of_unknown_callable(self):
        error = diagnostic(
            "fn f_main() void {\n  lift_off();\n  return;\n}\n"
        )
        assert "lift_off" in str(error)


class TestMinimalProgramParses:
    def test_minimal_program(self):
        image = parse_csl_program(MINIMAL, "minimal.csl")
        assert image.entry == "f_main"
        assert image.width == 1 and image.height == 1
