"""Print→parse round-trip: for every benchmark and boundary mode, the CSL
the backend prints re-parses to a canonically equal ProgramImage.

Equality is on the scheduling-insensitive canonical form
(:func:`repro.csl.canonical_program_image`): module metadata, buffers,
variables, imports and the effectful statement sequence of every callable
with full operand value trees.  Spelling differences (SSA temp names, pure
op order) are invisible by construction — semantic differences are not.
"""

import pytest

from repro.backend.csl_printer import print_csl_sources
from repro.benchmarks.definitions import ALL_BENCHMARKS
from repro.csl import canonical_program_image, parse_csl_sources
from repro.frontends.common import BoundaryCondition
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.interpreter import ProgramImage

BOUNDARIES = ("dirichlet", "periodic", "reflect")


@pytest.mark.parametrize(
    "bench", ALL_BENCHMARKS, ids=[b.name for b in ALL_BENCHMARKS]
)
@pytest.mark.parametrize("boundary", BOUNDARIES)
def test_print_parse_fixpoint(bench, boundary):
    program = bench.program(nx=4, ny=4, nz=8, time_steps=2)
    options = PipelineOptions(
        grid_width=4,
        grid_height=4,
        num_chunks=1,
        boundary=BoundaryCondition.parse(boundary),
    )
    compiled = compile_stencil_program(program, options)
    sources = print_csl_sources(compiled.csl_modules)

    parsed = parse_csl_sources(sources)
    generated = canonical_program_image(ProgramImage(compiled.program_module))
    reparsed = canonical_program_image(parsed.image())
    assert reparsed == generated

    # and printing the re-parsed module is a true fixpoint: text == text
    reprinted = print_csl_sources(parsed.modules)
    assert set(reprinted) == set(sources)
