"""CSL-source runs through the run service: fingerprints, caching, CLI."""

import io
import os

import pytest

from repro.backend.csl_printer import print_csl_sources
from repro.benchmarks import jacobian_benchmark
from repro.service.cli import main as service_main
from repro.service.run import (
    RunService,
    compute_csl_run_fingerprint,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program


@pytest.fixture(scope="module")
def sources():
    program = jacobian_benchmark.program(nx=4, ny=4, nz=8, time_steps=2)
    options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=1)
    compiled = compile_stencil_program(program, options)
    return print_csl_sources(compiled.csl_modules)


class TestCslRunFingerprint:
    def test_deterministic(self, sources):
        a = compute_csl_run_fingerprint(sources, "reference", 13, 100)
        b = compute_csl_run_fingerprint(dict(sources), "reference", 13, 100)
        assert a == b

    def test_sensitive_to_source_edits(self, sources):
        edited = dict(sources)
        name = sorted(edited)[0]
        edited[name] += "\n// an innocuous comment\n"
        assert compute_csl_run_fingerprint(
            edited, "reference", 13, 100
        ) != compute_csl_run_fingerprint(sources, "reference", 13, 100)

    def test_sensitive_to_run_parameters(self, sources):
        base = compute_csl_run_fingerprint(sources, "reference", 13, 100)
        assert compute_csl_run_fingerprint(sources, "vectorized", 13, 100) != base
        assert compute_csl_run_fingerprint(sources, "reference", 14, 100) != base
        assert compute_csl_run_fingerprint(sources, "reference", 13, 101) != base


class TestRunServiceCsl:
    def test_cold_then_warm(self, sources, tmp_path):
        service = RunService(cache_dir=str(tmp_path))
        first = service.run_csl(sources)
        second = service.run_csl(sources)
        assert first.fingerprint == second.fingerprint
        assert first.field_digests == second.field_digests
        assert service.statistics.simulations == 1
        assert service.statistics.cache_hits == 1

    def test_store_round_trip(self, sources, tmp_path):
        cache = str(tmp_path)
        first = RunService(cache_dir=cache).run_csl(sources)
        fresh = RunService(cache_dir=cache)
        again = fresh.run_csl(sources)
        assert fresh.statistics.simulations == 0
        assert fresh.statistics.cache_hits == 1
        assert again.field_digests == first.field_digests

    def test_executors_agree_on_digests(self, sources, tmp_path):
        service = RunService(cache_dir=str(tmp_path))
        reference = service.run_csl(sources, executor="reference")
        vectorized = service.run_csl(sources, executor="vectorized")
        assert reference.fingerprint != vectorized.fingerprint
        assert reference.field_digests == vectorized.field_digests


class TestServiceCliCsl:
    def _write_sources(self, sources, directory):
        os.makedirs(directory, exist_ok=True)
        for name, text in sources.items():
            with open(os.path.join(directory, name), "w") as handle:
                handle.write(text)

    def test_run_csl_smoke(self, sources, tmp_path):
        csl_dir = str(tmp_path / "csl")
        self._write_sources(sources, csl_dir)
        out = io.StringIO()
        code = service_main(
            [
                "run",
                "--csl",
                csl_dir,
                "--repeat",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "1 served from run cache" in text
        assert "jacobian" in text

    def test_run_csl_and_benchmarks_exclusive(self, tmp_path, capsys):
        code = service_main(
            ["run", "--csl", str(tmp_path), "Jacobian"], out=io.StringIO()
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_run_requires_some_input(self, capsys):
        code = service_main(["run"], out=io.StringIO())
        assert code == 2
        assert "name at least one benchmark or pass --csl" in capsys.readouterr().err
