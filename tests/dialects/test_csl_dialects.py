"""Unit tests for the paper's three dialects and the stencil/dmp dialects."""

import pytest

from repro.dialects import csl, csl_stencil, csl_wrapper, dmp, stencil
from repro.ir import VerifyException, f32
from repro.ir.types import MemRefType, TensorType


class TestStencilDialect:
    def test_bounds_shape(self):
        bounds = stencil.StencilBounds([(-1, 256), (-1, 256), (-1, 511)])
        assert bounds.shape == (257, 257, 512)
        assert bounds.rank == 3

    def test_temp_type_string(self):
        temp = stencil.TempType([(-1, 255)] * 2 + [(-1, 511)], f32)
        assert "!stencil.temp<" in str(temp)

    def test_field_and_temp_not_equal(self):
        bounds = [(-1, 3), (-1, 3)]
        assert stencil.FieldType(bounds, f32) != stencil.TempType(bounds, f32)

    def test_access_offset_rank_checked(self):
        temp_type = stencil.TempType([(-1, 3), (-1, 3), (-1, 7)], f32)
        apply_op = stencil.ApplyOp([], [temp_type])
        apply_op.body.block.add_arg(temp_type)
        access = stencil.AccessOp(apply_op.body.block.args[0], (1, 0), f32)
        with pytest.raises(VerifyException):
            access.verify()


class TestDmpDialect:
    def test_exchange_decl_string(self):
        decl = dmp.ExchangeDeclAttr((1, 0), depth=2)
        assert "to [1, 0]" in str(decl)
        assert decl.depth == 2

    def test_grid_slice_strategy(self):
        strategy = dmp.GridSlice2dAttr(dmp.RankTopoAttr([254, 254]))
        assert "254x254" in str(strategy)
        assert strategy.diagonals is False


class TestCslStencilDialect:
    def test_apply_requires_three_receive_args(self):
        from repro.ir.operation import Block, Region

        accumulator = TensorType([8], f32)
        receive = Region([Block(arg_types=[TensorType([8], f32)])])
        compute = Region([Block(arg_types=[TensorType([8], f32), accumulator])])
        from repro.dialects import tensor

        acc = tensor.EmptyOp(accumulator)
        communicated = tensor.EmptyOp(TensorType([10], f32))
        apply_op = csl_stencil.ApplyOp(
            communicated=communicated.result,
            accumulator=acc.result,
            extra_operands=[],
            result_types=[TensorType([8], f32)],
            receive_region=receive,
            compute_region=compute,
            swaps=[csl_stencil.ExchangeDeclAttr((1, 0))],
            num_chunks=2,
        )
        with pytest.raises(VerifyException):
            apply_op.verify()

    def test_access_is_local_detection(self):
        from repro.dialects import tensor

        buffer = tensor.EmptyOp(TensorType([8], f32))
        local = csl_stencil.AccessOp(buffer.result, (0, 0), TensorType([8], f32))
        remote = csl_stencil.AccessOp(buffer.result, (1, 0), TensorType([8], f32))
        assert local.is_local
        assert not remote.is_local


class TestCslWrapperDialect:
    def test_module_params(self):
        wrapper = csl_wrapper.ModuleOp(
            width=10,
            height=12,
            program_name="kernel",
            params=[csl_wrapper.ParamAttr("z_dim", 512)],
        )
        assert wrapper.param_value("z_dim") == 512
        assert wrapper.param_value("missing") is None
        wrapper.verify()

    def test_module_rejects_empty_grid(self):
        wrapper = csl_wrapper.ModuleOp(width=0, height=4, program_name="kernel")
        with pytest.raises(VerifyException):
            wrapper.verify()


class TestCslDialect:
    def test_task_kind_and_id_checked(self):
        with pytest.raises(VerifyException):
            csl.TaskOp("bad", "not-a-kind", 1)
        task = csl.TaskOp("t", csl.TaskKind.LOCAL, 99)
        with pytest.raises(VerifyException):
            task.verify()

    def test_color_range_checked(self):
        color = csl.GetColorOp(30)
        with pytest.raises(VerifyException):
            color.verify()

    def test_dsd_kind_checked(self):
        with pytest.raises(VerifyException):
            csl.DsdType("not_a_dsd")
        assert str(csl.DsdType(csl.DsdKind.MEM1D)) == "!csl.mem1d_dsd"

    def test_comms_exchange_requires_directions(self):
        buffer = csl.ZerosOp(MemRefType([8], f32), sym_name="b")
        with pytest.raises(VerifyException):
            csl.CommsExchangeOp(
                buffer=buffer.result,
                num_chunks=1,
                recv_callback="recv",
                done_callback="done",
                directions=[],
            ).verify()

    def test_zeros_records_buffer_type(self):
        zeros = csl.ZerosOp(MemRefType([128], f32), sym_name="acc")
        assert zeros.buffer_type.element_count() == 128

    def test_fmacs_operand_roles(self):
        buffer = csl.ZerosOp(MemRefType([4], f32), sym_name="b")
        dsd = csl.GetMemDsdOp(buffer.result, 4)
        constant = csl.ConstantOp(2.0, f32)
        fmacs = csl.FmacsOp(dsd.result, dsd.result, dsd.result, constant.result)
        assert fmacs.dest is dsd.result
        assert len(fmacs.sources) == 3
