"""Smoke and shape tests of the evaluation harness (figures and table)."""

import pytest

from repro.benchmarks.definitions import SMALL
from repro.eval.figure4 import compute_figure4, format_figure4
from repro.eval.figure5 import compute_figure5, format_figure5
from repro.eval.figure6 import compute_figure6, format_figure6
from repro.eval.figure7 import compute_figure7, format_figure7
from repro.eval.table1 import format_table1


class TestFigure4:
    @pytest.fixture(scope="class")
    def rows(self):
        return compute_figure4(SMALL)

    def test_has_the_four_paper_benchmarks(self, rows):
        assert [row.benchmark for row in rows] == [
            "Jacobian",
            "Diffusion",
            "Seismic",
            "UVKBE",
        ]

    def test_wse3_wins_everywhere(self, rows):
        assert all(row.wse3_gpts > row.wse2_gpts for row in rows)

    def test_format_contains_every_benchmark(self, rows):
        text = format_figure4(rows)
        for row in rows:
            assert row.benchmark in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def rows(self):
        return compute_figure5()

    def test_three_problem_sizes(self, rows):
        assert len(rows) == 3

    def test_generated_code_beats_handwritten(self, rows):
        assert all(row.ours_wse2_speedup > 1.0 for row in rows)

    def test_wse3_beats_wse2(self, rows):
        assert all(row.wse3_over_wse2 > 1.1 for row in rows)

    def test_format(self, rows):
        assert "hand-written" in format_figure5(rows)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_figure6()

    def test_wafer_beats_both_clusters(self, result):
        assert result.wse3_vs_gpu > 1.0
        assert result.wse3_vs_cpu > result.wse3_vs_gpu

    def test_format(self, result):
        assert "WSE3 speedup" in format_figure6(result)


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self):
        return compute_figure7()

    def test_eleven_points(self, data):
        # five benchmarks x (memory, fabric) + the A100 acoustic point.
        assert len(data.points) == 11

    def test_wse_memory_points_all_compute_bound(self, data):
        memory_ceiling = data.ceilings[0]
        for point in data.points:
            if "(memory)" in point.label:
                assert point.is_compute_bound(memory_ceiling)

    def test_a100_point_memory_bound(self, data):
        assert not data.point("Acoustic (A100)").is_compute_bound(data.ceilings[2])

    def test_format(self, data):
        assert "ceiling" in format_figure7(data)


class TestTable1Format:
    def test_header_matches_paper_columns(self):
        # Use the formatting path only (computing the full table is covered by
        # the benchmark harness).
        header = format_table1.__doc__ or ""
        text = format_table1()
        assert "CSL kernel only" in text
        assert "CSL entire" in text
        assert "DSL & ours" in text
