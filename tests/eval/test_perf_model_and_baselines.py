"""Tests for the performance model, the CPU/GPU baselines and the roofline."""

import pytest

from repro.baselines.cpu_model import acoustic_on_archer2
from repro.baselines.gpu_model import acoustic_on_tursa
from repro.baselines.roofline import (
    RooflineCeiling,
    RooflinePoint,
    wse_fabric_ceiling,
    wse_memory_ceiling,
)
from repro.benchmarks import jacobian_benchmark, seismic_benchmark
from repro.benchmarks.definitions import LARGE, SMALL
from repro.wse.machine import WSE2, WSE3, machine_by_name
from repro.wse.perf_model import (
    cycles_per_step,
    estimate_performance,
    handwritten_seismic_activity,
    measure_pe_activity,
)


class TestMachineSpecs:
    def test_lookup_by_name(self):
        assert machine_by_name("wse2") is WSE2
        assert machine_by_name("CS-3") is WSE3
        with pytest.raises(KeyError):
            machine_by_name("wse1")

    def test_wse3_improves_on_wse2(self):
        assert WSE3.peak_flops > WSE2.peak_flops
        assert WSE3.clock_hz > WSE2.clock_hz
        assert not WSE3.self_transmit_overhead
        assert WSE2.self_transmit_overhead

    def test_pe_memory_is_48kb(self):
        assert WSE2.pe_memory_bytes == 48 * 1024
        assert WSE3.pe_memory_bytes == 48 * 1024


class TestPerformanceModel:
    @pytest.fixture(scope="class")
    def jacobian_activity(self):
        return measure_pe_activity(jacobian_benchmark, WSE2, num_chunks=2)

    def test_activity_counts_are_positive(self, jacobian_activity):
        assert jacobian_activity.dsd_element_ops > 0
        assert jacobian_activity.wavelets > 0
        assert jacobian_activity.tasks > 0
        assert jacobian_activity.exchanges == 1

    def test_wse2_switch_restriction_costs_cycles(self, jacobian_activity):
        assert cycles_per_step(jacobian_activity, WSE2) > cycles_per_step(
            jacobian_activity, WSE3
        )

    def test_throughput_scales_with_grid_area(self, jacobian_activity):
        small = estimate_performance(
            jacobian_benchmark, WSE2, SMALL, activity=jacobian_activity
        )
        large = estimate_performance(
            jacobian_benchmark, WSE2, LARGE, activity=jacobian_activity
        )
        expected_ratio = (LARGE.nx * LARGE.ny) / (SMALL.nx * SMALL.ny)
        assert large.gpts_per_second / small.gpts_per_second == pytest.approx(
            expected_ratio, rel=1e-6
        )

    def test_memory_fits_in_a_pe(self, jacobian_activity):
        assert jacobian_activity.memory_bytes < WSE2.pe_memory_bytes

    def test_handwritten_model_is_slower_and_larger(self):
        generated = measure_pe_activity(seismic_benchmark, WSE2, num_chunks=1)
        handwritten = handwritten_seismic_activity(generated, seismic_benchmark.z_dim)
        assert cycles_per_step(handwritten, WSE2) > cycles_per_step(generated, WSE2)
        assert handwritten.memory_bytes > generated.memory_bytes
        assert handwritten.num_chunks >= 2


class TestClusterBaselines:
    def test_gpu_cluster_beats_cpu_cluster(self):
        assert acoustic_on_tursa().gpts_per_second > acoustic_on_archer2().gpts_per_second

    def test_strong_scaling_overheads_present(self):
        gpu = acoustic_on_tursa()
        assert gpu.halo_seconds > 0
        assert gpu.compute_seconds > 0

    def test_throughput_in_plausible_band(self):
        # The paper's Figure 6 shows the 128-GPU baseline around 10^3 GPts/s.
        assert 100 < acoustic_on_tursa().gpts_per_second < 10_000
        assert 10 < acoustic_on_archer2().gpts_per_second < 5_000


class TestRoofline:
    def test_attainable_is_min_of_peak_and_bandwidth(self):
        ceiling = RooflineCeiling("test", peak_flops=100.0, bandwidth=10.0)
        assert ceiling.attainable(1.0) == 10.0
        assert ceiling.attainable(1000.0) == 100.0
        assert ceiling.ridge_point() == pytest.approx(10.0)

    def test_wse_fabric_ridge_is_right_of_memory_ridge(self):
        assert (
            wse_fabric_ceiling(WSE3).ridge_point()
            > wse_memory_ceiling(WSE3).ridge_point()
        )

    def test_point_boundness(self):
        ceiling = RooflineCeiling("test", peak_flops=100.0, bandwidth=10.0)
        assert RooflinePoint("a", 20.0, 50.0).is_compute_bound(ceiling)
        assert not RooflinePoint("b", 1.0, 5.0).is_compute_bound(ceiling)
