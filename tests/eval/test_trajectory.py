"""The shared BENCH_*.json record schema, including the optional
``cache`` field the compiled-backend benchmarks record."""

import pytest

from repro.eval.trajectory import (
    make_record,
    merge_trajectory,
    read_trajectory,
    write_trajectory,
)


def _path(tmp_path):
    return tmp_path / "BENCH_probe.json"


class TestRecordSchema:
    def test_round_trip_without_cache(self, tmp_path):
        record = make_record("Jacobian", "8x8", "vectorized", 0.0015, 3.2)
        write_trajectory(_path(tmp_path), [record])
        assert read_trajectory(_path(tmp_path)) == [record]
        assert "cache" not in record

    def test_round_trip_with_cache(self, tmp_path):
        record = make_record(
            "Jacobian", "8x8", "compiled", 0.0002, 9.9, cache="warm"
        )
        assert record["cache"] == "warm"
        write_trajectory(_path(tmp_path), [record])
        assert read_trajectory(_path(tmp_path)) == [record]

    def test_unknown_extra_keys_still_fork_the_schema(self, tmp_path):
        record = make_record("Jacobian", "8x8", "vectorized", 0.0015, 3.2)
        record["surprise"] = True
        with pytest.raises(ValueError, match="do not match the shared schema"):
            write_trajectory(_path(tmp_path), [record])

    def test_cache_values_are_validated(self, tmp_path):
        record = make_record(
            "Jacobian", "8x8", "compiled", 0.0002, 9.9, cache="lukewarm"
        )
        with pytest.raises(ValueError, match="cache='lukewarm'"):
            write_trajectory(_path(tmp_path), [record])


class TestMergeKeying:
    def test_cold_and_warm_rows_coexist(self, tmp_path):
        cold = make_record("Jacobian", "8x8", "compiled", 0.01, 1.0, "cold")
        warm = make_record("Jacobian", "8x8", "compiled", 0.001, 10.0, "warm")
        merge_trajectory(_path(tmp_path), [cold])
        merge_trajectory(_path(tmp_path), [warm])
        assert read_trajectory(_path(tmp_path)) == [cold, warm]

    def test_same_cache_key_replaces(self, tmp_path):
        first = make_record("Jacobian", "8x8", "compiled", 0.01, 1.0, "warm")
        second = make_record("Jacobian", "8x8", "compiled", 0.002, 5.0, "warm")
        merge_trajectory(_path(tmp_path), [first])
        merge_trajectory(_path(tmp_path), [second])
        assert read_trajectory(_path(tmp_path)) == [second]

    def test_cacheless_rows_keep_their_own_key(self, tmp_path):
        plain = make_record("Jacobian", "8x8", "vectorized", 0.004, 1.0)
        cached = make_record("Jacobian", "8x8", "vectorized", 0.003, 1.3, "warm")
        merge_trajectory(_path(tmp_path), [plain])
        merge_trajectory(_path(tmp_path), [cached])
        assert read_trajectory(_path(tmp_path)) == [plain, cached]
