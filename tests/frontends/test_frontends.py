"""Unit tests for the three front-ends and the shared program description."""

import numpy as np
import pytest

from repro.baselines.numpy_ref import allocate_fields, run_reference, interior
from repro.dialects import scf, stencil
from repro.frontends.common import (
    Add,
    Constant,
    FieldAccess,
    FieldDecl,
    Mul,
    StencilEquation,
    StencilProgram,
    build_stencil_module,
)
from repro.frontends.devito_like import Eq, Grid, Operator, TimeFunction
from repro.frontends.flang_like import FortranParseError, parse_fortran_stencil
from repro.frontends.psyclone_like import (
    AccessMode,
    AlgorithmLayer,
    FieldArgument,
    Kernel,
    KernelMetadata,
)


class TestExpressionAlgebra:
    def test_operator_overloading_builds_trees(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("u", (1, 0, 0))
        expression = (a + b) * 0.5
        assert isinstance(expression, Mul)
        assert isinstance(expression.factors[0], Add)
        assert isinstance(expression.factors[1], Constant)

    def test_subtraction_lowered_to_add_of_negated(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("u", (1, 0, 0))
        expression = a - b
        assert isinstance(expression, Add)

    def test_accesses_enumerates_all_reads(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("v", (1, 0, 0))
        assert {access.field for access in (a + b * 2.0).accesses()} == {"u", "v"}


class TestStencilModuleEmission:
    def test_module_structure(self):
        program = StencilProgram(
            name="k",
            fields=[FieldDecl("u", (4, 4, 8)), FieldDecl("v", (4, 4, 8))],
            equations=[
                StencilEquation("v", FieldAccess("u", (1, 0, 0)) + 1.0)
            ],
            time_steps=3,
        )
        module = build_stencil_module(program)
        module.verify()
        loops = list(module.walk_type(scf.ForOp))
        assert len(loops) == 1
        applies = list(module.walk_type(stencil.ApplyOp))
        assert len(applies) == 1
        accesses = list(module.walk_type(stencil.AccessOp))
        assert [access.offset for access in accesses] == [(1, 0, 0)]

    def test_field_types_carry_halo_bounds(self):
        program = StencilProgram(
            name="k",
            fields=[FieldDecl("u", (4, 4, 8), halo=(2, 2, 2))],
            equations=[StencilEquation("u", FieldAccess("u", (0, 0, 0)))],
        )
        module = build_stencil_module(program)
        func_op = module.ops[0]
        field_type = func_op.args[0].type
        assert isinstance(field_type, stencil.FieldType)
        assert field_type.bounds[0] == (-2, 6)


class TestDevitoLikeFrontend:
    def test_laplace_is_seven_point(self):
        grid = Grid((4, 4, 8))
        u = TimeFunction("u", grid)
        offsets = {access.offset for access in u.laplace().accesses()}
        assert len(offsets) == 7

    def test_high_order_laplacian_point_count(self):
        grid = Grid((4, 4, 8), halo=(4, 4, 4))
        u = TimeFunction("u", grid, space_order=4)
        expression = u.laplace_high_order(4, [1.0, 0.1, 0.2, 0.3, 0.4])
        assert len({a.offset for a in expression.accesses()}) == 25

    def test_high_order_requires_matching_coefficients(self):
        u = TimeFunction("u", Grid((4, 4, 8)))
        with pytest.raises(ValueError):
            u.laplace_high_order(2, [1.0])

    def test_operator_collects_fields(self):
        grid = Grid((4, 4, 8))
        u, v = TimeFunction("u", grid), TimeFunction("v", grid)
        program = Operator([Eq(v, u.laplace())], time_steps=2).to_stencil_program()
        assert {decl.name for decl in program.fields} == {"u", "v"}
        assert program.time_steps == 2


class TestFlangLikeFrontend:
    def test_listing1_example(self):
        source = """
        do i = 2, 255
          do j = 2, 255
            do k = 2, 511
              data(k,j,i) = (data(k,j,i) + data(k,j,i+1)) * 0.12345
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        assert program.fields[0].name == "data"
        assert program.fields[0].shape == (254, 254, 510)
        offsets = {a.offset for a in program.equations[0].expression.accesses()}
        assert offsets == {(0, 0, 0), (1, 0, 0)}

    def test_index_order_maps_innermost_loop_to_z(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k+1,j,i) * 2.0
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        offsets = {a.offset for a in program.equations[0].expression.accesses()}
        assert offsets == {(0, 0, 1)}

    def test_negative_constants_and_subtraction(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i) - a(k,j,i-1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        fields = {a.field for a in program.equations[0].expression.accesses()}
        assert fields == {"a"}

    def test_reports_unparseable_input(self):
        with pytest.raises(FortranParseError):
            parse_fortran_stencil("do i = 1, 4\nenddo")

    def test_functional_against_reference(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = (a(k,j,i) + a(k,j,i+1)) * 0.5
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        fields = allocate_fields(program, lambda name, shape: np.ones(shape))
        run_reference(program, fields)
        core = interior(program, "b", fields["b"])
        # Interior cells average two ones -> 1; cells next to the x halo see a
        # zero halo value -> 0.5.
        assert np.isclose(core[0, 0, 0], 1.0)
        assert np.isclose(core[-1, 0, 0], 0.5)


class TestPsycloneLikeFrontend:
    def test_metadata_written_and_read_fields(self):
        metadata = KernelMetadata(
            "k",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
                FieldArgument("c", AccessMode.READWRITE),
            ],
        )
        assert metadata.written_fields() == ["b", "c"]
        assert metadata.read_fields() == ["a", "c"]

    def test_missing_expression_is_reported(self):
        metadata = KernelMetadata("k", [FieldArgument("b", AccessMode.WRITE)])
        kernel = Kernel(metadata, {})
        with pytest.raises(KeyError):
            kernel.build_equations()

    def test_algorithm_layer_collects_invokes(self):
        metadata = KernelMetadata(
            "k",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
            ],
        )
        kernel = Kernel(metadata, {"b": lambda access: access("a", 1, 0, 0)})
        program = (
            AlgorithmLayer("alg", (4, 4, 8)).invoke(kernel).to_stencil_program()
        )
        assert {decl.name for decl in program.fields} == {"a", "b"}
        assert len(program.equations) == 1


class TestBoundaryDeclarations:
    """Each front-end expresses the boundary condition in its own idiom."""

    def test_devito_grid_boundary_reaches_the_program(self):
        from repro.frontends.common import BoundaryCondition

        grid = Grid((4, 4, 8), boundary=BoundaryCondition.periodic())
        u, v = TimeFunction("u", grid), TimeFunction("v", grid)
        program = Operator([Eq(v, u.laplace())]).to_stencil_program()
        assert program.boundary == BoundaryCondition.periodic()

    def test_devito_default_is_dirichlet_zero(self):
        grid = Grid((4, 4, 8))
        u, v = TimeFunction("u", grid), TimeFunction("v", grid)
        program = Operator([Eq(v, u.laplace())]).to_stencil_program()
        from repro.frontends.common import BoundaryCondition

        assert program.boundary == BoundaryCondition.dirichlet()

    def test_devito_conflicting_grids_rejected(self):
        from repro.frontends.common import BoundaryCondition

        periodic = Grid((4, 4, 8), boundary=BoundaryCondition.periodic())
        reflect = Grid((4, 4, 8), boundary=BoundaryCondition.reflect())
        u = TimeFunction("u", periodic)
        v = TimeFunction("v", reflect)
        with pytest.raises(ValueError, match="same boundary"):
            Operator([Eq(u, u.center), Eq(v, v.center)]).to_stencil_program()

    def test_devito_conflicting_read_only_grid_rejected(self):
        """A read-only function's grid counts too: compiling its halo reads
        under the target's boundary would be silently wrong."""
        from repro.frontends.common import BoundaryCondition

        u = TimeFunction(
            "u", Grid((4, 4, 8), boundary=BoundaryCondition.reflect())
        )
        v = TimeFunction(
            "v", Grid((4, 4, 8), boundary=BoundaryCondition.periodic())
        )
        with pytest.raises(ValueError, match="same boundary"):
            Operator([Eq(v, u.laplace())]).to_stencil_program()

    def test_psyclone_kernel_metadata_boundary(self):
        from repro.frontends.common import BoundaryCondition

        metadata = KernelMetadata(
            "k",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
            ],
            boundary=BoundaryCondition.reflect(),
        )
        kernel = Kernel(metadata, {"b": lambda access: access("a", 1, 0, 0)})
        program = (
            AlgorithmLayer("alg", (4, 4, 8)).invoke(kernel).to_stencil_program()
        )
        assert program.boundary == BoundaryCondition.reflect()

    def test_psyclone_conflicting_kernels_rejected(self):
        from repro.frontends.common import BoundaryCondition

        first = Kernel(
            KernelMetadata(
                "k1",
                [FieldArgument("b", AccessMode.WRITE)],
                boundary=BoundaryCondition.periodic(),
            ),
            {"b": lambda access: access("b", 0, 0, 0)},
        )
        second = Kernel(
            KernelMetadata(
                "k2",
                [FieldArgument("c", AccessMode.WRITE)],
                boundary=BoundaryCondition.reflect(),
            ),
            {"c": lambda access: access("c", 0, 0, 0)},
        )
        with pytest.raises(ValueError, match="must agree"):
            AlgorithmLayer("alg", (4, 4, 8)).invoke(
                first, second
            ).to_stencil_program()

    def test_flang_directive_selects_the_boundary(self):
        from repro.frontends.common import BoundaryCondition

        source = """
        !$repro boundary(dirichlet: -2.5)
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        assert program.boundary == BoundaryCondition.dirichlet(-2.5)

    def test_flang_directive_rejects_bad_modes(self):
        source = """
        !$repro boundary(periodic: 3.0)
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        with pytest.raises(FortranParseError, match="takes no value"):
            parse_fortran_stencil(source)

    def test_flang_plain_comments_are_ignored(self):
        source = """
        ! a plain comment, not a directive: x = y
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        from repro.frontends.common import BoundaryCondition

        assert program.boundary == BoundaryCondition.dirichlet()
        assert len(program.equations) == 1


class TestHaloDerivation:
    """Regression: accesses wider than ``space_order`` must widen the halo
    (they used to silently under-allocate it and read stale padding)."""

    def test_halo_follows_the_widest_access(self):
        grid = Grid((8, 8, 12))
        u = TimeFunction("u", grid, space_order=1)
        v = TimeFunction("v", grid, space_order=1)
        wide = u.laplace_high_order(2, [-2.5, 4.0 / 3.0, -1.0 / 12.0])
        program = Operator([Eq(v, wide)]).to_stencil_program()
        assert program.field("u").halo == (2, 2, 2)
        # The halo is uniform across fields (the simulator's column layout
        # requires it), so the written-only field widens too.
        assert program.field("v").halo == (2, 2, 2)

    def test_discarded_accesses_do_not_inflate_the_halo(self):
        """Building an expression that never enters the Operator must not
        widen anything — only offsets in the program's equations count."""
        u = TimeFunction("u", Grid((8, 8, 12)), space_order=1)
        u[5, 0, 0]  # probe access, discarded
        program = Operator([Eq(u, u.center)]).to_stencil_program()
        assert program.field("u").halo == (1, 1, 1)

    def test_wide_access_program_is_functionally_correct(self):
        """End to end: radius-2 Laplacian on space_order=1 functions now
        matches the oracle instead of reading stale halo padding."""
        from repro.tests_support import simulate_against_reference
        from repro.transforms.pipeline import PipelineOptions

        grid = Grid((5, 5, 10))
        u = TimeFunction("u", grid, space_order=1)
        v = TimeFunction("v", grid, space_order=1)
        wide = u.laplace_high_order(2, [-2.5, 4.0 / 3.0, -1.0 / 12.0])
        program = Operator(
            [Eq(v, u.center + wide * Constant(0.1))],
            name="wide_access",
            time_steps=2,
        ).to_stencil_program()
        simulated, reference = simulate_against_reference(
            program, PipelineOptions(grid_width=5, grid_height=5, num_chunks=2)
        )
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=2e-5, atol=1e-5
        )


class TestDirectiveAndParseDiagnostics:
    def test_malformed_repro_directive_raises(self):
        source = """
        !$repro boundary periodic
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        with pytest.raises(FortranParseError, match="malformed"):
            parse_fortran_stencil(source)

    def test_parse_reports_unknown_kind_even_with_value(self):
        from repro.frontends.common import BoundaryCondition

        with pytest.raises(ValueError, match="unknown boundary kind 'neumann'"):
            BoundaryCondition.parse("neumann:2")

    def test_prose_comment_mentioning_the_directive_is_ignored(self):
        from repro.frontends.common import BoundaryCondition

        source = """
        ! NOTE: add !$repro boundary(periodic) here to make the domain wrap
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        assert program.boundary == BoundaryCondition.dirichlet()

    def test_duplicate_boundary_directives_rejected(self):
        source = """
        !$repro boundary(periodic)
        !$repro boundary(reflect)
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        with pytest.raises(FortranParseError, match="duplicate"):
            parse_fortran_stencil(source)


class TestGridHaloHonoured:
    def test_grid_halo_widens_the_program_halo(self):
        """Grid(halo=...) is a declaration like space_order: the program's
        uniform halo must cover it even when no access is that wide."""
        grid = Grid((6, 6, 10), halo=(3, 3, 3))
        u, v = TimeFunction("u", grid), TimeFunction("v", grid)
        program = Operator([Eq(v, u.laplace())]).to_stencil_program()
        assert program.field("u").halo == (3, 3, 3)
        assert program.field("v").halo == (3, 3, 3)


class TestDirectiveAnchoring:
    @pytest.mark.parametrize(
        "directive",
        [
            "!$repro boundary(dirichlet): 1.5",
            "!$repro boundary(periodic) boundary(reflect)",
        ],
    )
    def test_trailing_garbage_after_directive_rejected(self, directive):
        source = f"""
        {directive}
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        with pytest.raises(FortranParseError, match="malformed"):
            parse_fortran_stencil(source)


class TestOracleRefreshesCallerBuiltArrays:
    def test_dirichlet_fill_applied_to_plain_arrays(self):
        """run_reference on arrays not built by allocate_fields must still
        deliver the constant fill on first read."""
        from repro.frontends.common import BoundaryCondition
        from dataclasses import replace

        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        program = replace(
            parse_fortran_stencil(source),
            boundary=BoundaryCondition.dirichlet(1.5),
        )
        fields = {
            "a": np.zeros((6, 6, 10), dtype=np.float32),
            "b": np.zeros((6, 6, 10), dtype=np.float32),
        }
        interior(program, "a", fields["a"])[...] = 1.0
        run_reference(program, fields)
        core = interior(program, "b", fields["b"])
        assert np.all(core[:-1, :, :] == 1.0)
        assert np.all(core[-1, :, :] == 1.5)

    def test_apply_boundary_heals_caller_built_arrays(self):
        """Caller-built arrays go through apply_boundary (the allocation
        contract) and then match the allocate_fields path, z halo included;
        run_reference itself only ever refreshes the exchanged (x, y) rim."""
        from dataclasses import replace

        from repro.baselines.numpy_ref import apply_boundary
        from repro.frontends.common import BoundaryCondition

        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k+1,j,i)
            enddo
          enddo
        enddo
        """
        program = replace(
            parse_fortran_stencil(source),
            boundary=BoundaryCondition.dirichlet(1.5),
        )
        plain = {
            "a": np.zeros((6, 6, 10), dtype=np.float32),
            "b": np.zeros((6, 6, 10), dtype=np.float32),
        }
        interior(program, "a", plain["a"])[...] = 1.0
        for name in plain:
            apply_boundary(program, name, plain[name])
        run_reference(program, plain)

        allocated = allocate_fields(program, lambda n, s: np.ones(s))
        run_reference(program, allocated)

        assert np.array_equal(
            interior(program, "b", plain["b"]),
            interior(program, "b", allocated["b"]),
        )
        # The top z slice reads the dirichlet-filled z halo.
        assert np.all(interior(program, "b", plain["b"])[:, :, -1] == 1.5)

    def test_split_runs_match_one_continuous_run(self):
        """Running N steps as N calls must equal one N-step call — the z
        halo stays as loaded either way, like the fabric's column halo."""
        from dataclasses import replace

        from repro.frontends.common import BoundaryCondition

        source = """
        do i = 1, 5
          do j = 1, 4
            do k = 1, 8
              v(k,j,i) = u(k,j,i) * 2.0
              w(k,j,i) = v(k+1,j,i) + v(k,j+1,i)
            enddo
          enddo
        enddo
        """
        program = replace(
            parse_fortran_stencil(source), boundary=BoundaryCondition.periodic()
        )
        rng = np.random.default_rng(5)
        continuous = allocate_fields(program, lambda n, s: rng.uniform(-1, 1, s))
        split = {name: array.copy() for name, array in continuous.items()}
        run_reference(program, continuous, time_steps=3)
        for _ in range(3):
            run_reference(program, split, time_steps=1)
        for name in continuous:
            assert continuous[name].tobytes() == split[name].tobytes()

    def test_write_before_first_read_keeps_load_time_z_halo(self):
        """A non-Dirichlet field written before it is first read must keep
        its load-time z halo (the fabric never re-derives it), so chained
        equations agree with both backends."""
        from dataclasses import replace

        from repro.frontends.common import (
            BoundaryCondition,
            Constant,
            FieldAccess,
            FieldDecl,
            StencilEquation,
            StencilProgram,
        )
        from repro.tests_support import simulate_against_reference
        from repro.transforms.pipeline import PipelineOptions

        program = StencilProgram(
            name="chained_z",
            fields=[
                FieldDecl("u", (4, 4, 8)),
                FieldDecl("v", (4, 4, 8)),
                FieldDecl("w", (4, 4, 8)),
            ],
            equations=[
                StencilEquation("v", FieldAccess("u", (0, 0, 0)) * Constant(2.0)),
                StencilEquation("w", FieldAccess("v", (0, 0, 1)) * Constant(1.0)),
            ],
            time_steps=2,
            boundary=BoundaryCondition.periodic(),
        )
        for executor in ("reference", "vectorized"):
            simulated, reference = simulate_against_reference(
                program,
                PipelineOptions(grid_width=4, grid_height=4, num_chunks=2),
                executor=executor,
            )
            np.testing.assert_allclose(
                simulated["w"], reference["w"], rtol=2e-5, atol=1e-5
            )

    def test_devito_conflicting_grid_shapes_rejected(self):
        u = TimeFunction("u", Grid((8, 8, 12)))
        v = TimeFunction("v", Grid((4, 4, 8)))
        with pytest.raises(ValueError, match="share the same shape"):
            Operator([Eq(v, u.laplace())]).to_stencil_program()

    def test_psyclone_builder_access_wider_than_declared_extent(self):
        """Regression (same class as the Devito fix): a kernel builder
        reaching past its metadata's declared extent widens the halo
        instead of silently under-allocating it."""
        from repro.tests_support import simulate_against_reference
        from repro.transforms.pipeline import PipelineOptions

        metadata = KernelMetadata(
            "wide",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
            ],
        )
        kernel = Kernel(metadata, {"b": lambda access: access("a", 2, 0, 0)})
        program = (
            AlgorithmLayer("wide_alg", (5, 5, 8), time_steps=1)
            .invoke(kernel)
            .to_stencil_program()
        )
        # Widened along x by the actual access; declared extent floors y/z.
        assert program.field("a").halo == (2, 1, 1)
        simulated, reference = simulate_against_reference(
            program, PipelineOptions(grid_width=5, grid_height=5, num_chunks=1)
        )
        np.testing.assert_allclose(
            simulated["b"], reference["b"], rtol=2e-5, atol=1e-5
        )

    def test_prefix_sharing_comment_words_are_not_directives(self):
        from repro.frontends.common import BoundaryCondition

        source = """
        !$reproducibility note: seeds are fixed
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i+1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        assert program.boundary == BoundaryCondition.dirichlet()
