"""Unit tests for the three front-ends and the shared program description."""

import numpy as np
import pytest

from repro.baselines.numpy_ref import allocate_fields, run_reference, interior
from repro.dialects import scf, stencil
from repro.frontends.common import (
    Add,
    Constant,
    FieldAccess,
    FieldDecl,
    Mul,
    StencilEquation,
    StencilProgram,
    build_stencil_module,
)
from repro.frontends.devito_like import Eq, Grid, Operator, TimeFunction
from repro.frontends.flang_like import FortranParseError, parse_fortran_stencil
from repro.frontends.psyclone_like import (
    AccessMode,
    AlgorithmLayer,
    FieldArgument,
    Kernel,
    KernelMetadata,
)


class TestExpressionAlgebra:
    def test_operator_overloading_builds_trees(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("u", (1, 0, 0))
        expression = (a + b) * 0.5
        assert isinstance(expression, Mul)
        assert isinstance(expression.factors[0], Add)
        assert isinstance(expression.factors[1], Constant)

    def test_subtraction_lowered_to_add_of_negated(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("u", (1, 0, 0))
        expression = a - b
        assert isinstance(expression, Add)

    def test_accesses_enumerates_all_reads(self):
        a = FieldAccess("u", (0, 0, 0))
        b = FieldAccess("v", (1, 0, 0))
        assert {access.field for access in (a + b * 2.0).accesses()} == {"u", "v"}


class TestStencilModuleEmission:
    def test_module_structure(self):
        program = StencilProgram(
            name="k",
            fields=[FieldDecl("u", (4, 4, 8)), FieldDecl("v", (4, 4, 8))],
            equations=[
                StencilEquation("v", FieldAccess("u", (1, 0, 0)) + 1.0)
            ],
            time_steps=3,
        )
        module = build_stencil_module(program)
        module.verify()
        loops = list(module.walk_type(scf.ForOp))
        assert len(loops) == 1
        applies = list(module.walk_type(stencil.ApplyOp))
        assert len(applies) == 1
        accesses = list(module.walk_type(stencil.AccessOp))
        assert [access.offset for access in accesses] == [(1, 0, 0)]

    def test_field_types_carry_halo_bounds(self):
        program = StencilProgram(
            name="k",
            fields=[FieldDecl("u", (4, 4, 8), halo=(2, 2, 2))],
            equations=[StencilEquation("u", FieldAccess("u", (0, 0, 0)))],
        )
        module = build_stencil_module(program)
        func_op = module.ops[0]
        field_type = func_op.args[0].type
        assert isinstance(field_type, stencil.FieldType)
        assert field_type.bounds[0] == (-2, 6)


class TestDevitoLikeFrontend:
    def test_laplace_is_seven_point(self):
        grid = Grid((4, 4, 8))
        u = TimeFunction("u", grid)
        offsets = {access.offset for access in u.laplace().accesses()}
        assert len(offsets) == 7

    def test_high_order_laplacian_point_count(self):
        grid = Grid((4, 4, 8), halo=(4, 4, 4))
        u = TimeFunction("u", grid, space_order=4)
        expression = u.laplace_high_order(4, [1.0, 0.1, 0.2, 0.3, 0.4])
        assert len({a.offset for a in expression.accesses()}) == 25

    def test_high_order_requires_matching_coefficients(self):
        u = TimeFunction("u", Grid((4, 4, 8)))
        with pytest.raises(ValueError):
            u.laplace_high_order(2, [1.0])

    def test_operator_collects_fields(self):
        grid = Grid((4, 4, 8))
        u, v = TimeFunction("u", grid), TimeFunction("v", grid)
        program = Operator([Eq(v, u.laplace())], time_steps=2).to_stencil_program()
        assert {decl.name for decl in program.fields} == {"u", "v"}
        assert program.time_steps == 2


class TestFlangLikeFrontend:
    def test_listing1_example(self):
        source = """
        do i = 2, 255
          do j = 2, 255
            do k = 2, 511
              data(k,j,i) = (data(k,j,i) + data(k,j,i+1)) * 0.12345
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        assert program.fields[0].name == "data"
        assert program.fields[0].shape == (254, 254, 510)
        offsets = {a.offset for a in program.equations[0].expression.accesses()}
        assert offsets == {(0, 0, 0), (1, 0, 0)}

    def test_index_order_maps_innermost_loop_to_z(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k+1,j,i) * 2.0
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        offsets = {a.offset for a in program.equations[0].expression.accesses()}
        assert offsets == {(0, 0, 1)}

    def test_negative_constants_and_subtraction(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = a(k,j,i) - a(k,j,i-1)
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        fields = {a.field for a in program.equations[0].expression.accesses()}
        assert fields == {"a"}

    def test_reports_unparseable_input(self):
        with pytest.raises(FortranParseError):
            parse_fortran_stencil("do i = 1, 4\nenddo")

    def test_functional_against_reference(self):
        source = """
        do i = 1, 4
          do j = 1, 4
            do k = 1, 8
              b(k,j,i) = (a(k,j,i) + a(k,j,i+1)) * 0.5
            enddo
          enddo
        enddo
        """
        program = parse_fortran_stencil(source)
        fields = allocate_fields(program, lambda name, shape: np.ones(shape))
        run_reference(program, fields)
        core = interior(program, "b", fields["b"])
        # Interior cells average two ones -> 1; cells next to the x halo see a
        # zero halo value -> 0.5.
        assert np.isclose(core[0, 0, 0], 1.0)
        assert np.isclose(core[-1, 0, 0], 0.5)


class TestPsycloneLikeFrontend:
    def test_metadata_written_and_read_fields(self):
        metadata = KernelMetadata(
            "k",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
                FieldArgument("c", AccessMode.READWRITE),
            ],
        )
        assert metadata.written_fields() == ["b", "c"]
        assert metadata.read_fields() == ["a", "c"]

    def test_missing_expression_is_reported(self):
        metadata = KernelMetadata("k", [FieldArgument("b", AccessMode.WRITE)])
        kernel = Kernel(metadata, {})
        with pytest.raises(KeyError):
            kernel.build_equations()

    def test_algorithm_layer_collects_invokes(self):
        metadata = KernelMetadata(
            "k",
            [
                FieldArgument("a", AccessMode.READ, 1),
                FieldArgument("b", AccessMode.WRITE),
            ],
        )
        kernel = Kernel(metadata, {"b": lambda access: access("a", 1, 0, 0)})
        program = (
            AlgorithmLayer("alg", (4, 4, 8)).invoke(kernel).to_stencil_program()
        )
        assert {decl.name for decl in program.fields} == {"a", "b"}
        assert len(program.equations) == 1
