"""Unit tests for the attribute system."""

import pytest

from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    IntAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
)


class TestScalarAttributes:
    def test_int_attr_equality(self):
        assert IntAttr(3) == IntAttr(3)
        assert IntAttr(3) != IntAttr(4)

    def test_int_attr_hashable(self):
        assert hash(IntAttr(3)) == hash(IntAttr(3))
        assert len({IntAttr(1), IntAttr(1), IntAttr(2)}) == 2

    def test_float_attr(self):
        assert FloatAttr(0.12345) == FloatAttr(0.12345)
        assert FloatAttr(1.0) != FloatAttr(2.0)
        assert FloatAttr(1).value == 1.0

    def test_bool_attr(self):
        assert BoolAttr(True).value is True
        assert BoolAttr(False) != BoolAttr(True)

    def test_string_attr(self):
        assert StringAttr("hello").data == "hello"
        assert StringAttr("a") != StringAttr("b")

    def test_unit_attr(self):
        assert UnitAttr() == UnitAttr()

    def test_different_types_never_equal(self):
        assert IntAttr(1) != FloatAttr(1.0)
        assert IntAttr(0) != BoolAttr(False)


class TestSymbolRef:
    def test_simple(self):
        ref = SymbolRefAttr("kernel")
        assert ref.string_value == "kernel"

    def test_nested(self):
        ref = SymbolRefAttr("module", ["inner", "fn"])
        assert ref.string_value == "module.inner.fn"

    def test_equality(self):
        assert SymbolRefAttr("a") == SymbolRefAttr("a")
        assert SymbolRefAttr("a") != SymbolRefAttr("b")


class TestContainerAttributes:
    def test_array_attr(self):
        arr = ArrayAttr([IntAttr(1), IntAttr(2)])
        assert len(arr) == 2
        assert arr[0] == IntAttr(1)
        assert list(arr) == [IntAttr(1), IntAttr(2)]

    def test_array_attr_equality(self):
        assert ArrayAttr([IntAttr(1)]) == ArrayAttr([IntAttr(1)])
        assert ArrayAttr([IntAttr(1)]) != ArrayAttr([IntAttr(2)])

    def test_dense_array(self):
        dense = DenseArrayAttr([1, 0, -1])
        assert dense.as_tuple() == (1, 0, -1)
        assert len(dense) == 3
        assert dense[2] == -1

    def test_dense_array_floats(self):
        dense = DenseArrayAttr([0.5, 1.5])
        assert dense.as_tuple() == (0.5, 1.5)

    def test_dictionary_attr(self):
        d = DictionaryAttr({"width": IntAttr(10), "name": StringAttr("x")})
        assert d["width"] == IntAttr(10)
        assert "name" in d
        assert d.get("missing") is None

    def test_dictionary_equality_is_order_independent(self):
        a = DictionaryAttr({"x": IntAttr(1), "y": IntAttr(2)})
        b = DictionaryAttr({"y": IntAttr(2), "x": IntAttr(1)})
        assert a == b
