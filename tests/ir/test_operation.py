"""Unit tests for operations, blocks, regions, and def-use chains."""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.ir import Block, Region, VerifyException, f32
from repro.ir.operation import UnregisteredOp


def make_add_chain():
    """c0 = 1.0; c1 = 2.0; s = c0 + c1."""
    c0 = arith.ConstantOp(1.0, f32)
    c1 = arith.ConstantOp(2.0, f32)
    add = arith.AddfOp(c0.result, c1.result)
    module = ModuleOp([c0, c1, add])
    return module, c0, c1, add


class TestDefUse:
    def test_operands_recorded(self):
        _, c0, c1, add = make_add_chain()
        assert add.operands == (c0.result, c1.result)

    def test_uses_tracked(self):
        _, c0, c1, add = make_add_chain()
        assert c0.result.has_uses
        assert add in list(c0.result.users())

    def test_replace_all_uses_with(self):
        _, c0, c1, add = make_add_chain()
        c2 = arith.ConstantOp(3.0, f32)
        c0.result.replace_all_uses_with(c2.result)
        assert add.operands[0] is c2.result
        assert not c0.result.has_uses
        assert c2.result.has_uses

    def test_drop_all_operands(self):
        _, c0, c1, add = make_add_chain()
        add.drop_all_operands()
        assert not c0.result.has_uses
        assert not c1.result.has_uses
        assert add.operands == ()


class TestBlocksAndRegions:
    def test_module_ops_order(self):
        module, c0, c1, add = make_add_chain()
        assert module.ops == [c0, c1, add]

    def test_parent_pointers(self):
        module, c0, *_ = make_add_chain()
        assert c0.parent is module.body
        assert c0.parent_op() is module

    def test_walk_visits_nested_ops(self):
        module, c0, c1, add = make_add_chain()
        visited = list(module.walk())
        assert visited[0] is module
        assert c0 in visited and add in visited

    def test_insert_before_and_after(self):
        module, c0, c1, add = make_add_chain()
        extra = arith.ConstantOp(9.0, f32)
        module.body.insert_op_before(extra, add)
        assert module.ops.index(extra) == module.ops.index(add) - 1

    def test_block_args(self):
        block = Block(arg_types=[f32, f32])
        assert len(block.args) == 2
        assert block.args[1].index == 1

    def test_single_block_region_accessor(self):
        region = Region([Block(), Block()])
        with pytest.raises(VerifyException):
            _ = region.block


class TestMutation:
    def test_erase_requires_no_uses(self):
        module, c0, c1, add = make_add_chain()
        with pytest.raises(VerifyException):
            c0.erase()

    def test_erase_leaf(self):
        module, c0, c1, add = make_add_chain()
        add.erase()
        assert add not in module.ops
        assert not c0.result.has_uses

    def test_detach_keeps_operands(self):
        module, c0, c1, add = make_add_chain()
        add.detach()
        assert add not in module.ops
        assert c0.result.has_uses

    def test_clone_module(self):
        module, c0, c1, add = make_add_chain()
        cloned = module.clone()
        assert len(cloned.ops) == 3
        # Cloned add must use the *cloned* constants, not the originals.
        cloned_add = cloned.ops[2]
        assert cloned_add.operands[0] is cloned.ops[0].results[0]
        assert cloned_add.operands[0] is not c0.result

    def test_clone_preserves_attributes(self):
        c0 = arith.ConstantOp(5.0, f32)
        clone = c0.clone()
        assert clone.value == 5.0
        assert clone is not c0


class TestVerification:
    def test_valid_module_verifies(self):
        module, *_ = make_add_chain()
        module.verify()

    def test_stale_parent_detected(self):
        module, c0, *_ = make_add_chain()
        c0.parent = None
        with pytest.raises(VerifyException):
            module.verify()

    def test_terminator_trait(self):
        from repro.dialects import func
        from repro.ir.types import FunctionType

        fn = func.FuncOp("f", FunctionType([], []))
        fn.body.block.add_op(func.ReturnOp())
        fn.body.block.add_op(UnregisteredOp("test.dummy"))
        module = ModuleOp([fn])
        with pytest.raises(VerifyException):
            module.verify()
