"""Tests for pass-manager instrumentation and failure reporting."""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.ir import ModulePass, PassManager, f32
from repro.ir.exceptions import PassFailedException


class NoOpPass(ModulePass):
    name = "no-op"

    def apply(self, module):
        pass


class AddConstantPass(ModulePass):
    name = "add-constant"

    def apply(self, module):
        module.body.add_op(arith.ConstantOp(1.0, f32))


class ExplodingPass(ModulePass):
    name = "exploding"

    def apply(self, module):
        raise RuntimeError("boom")


def build_module():
    return ModuleOp([arith.ConstantOp(0.0, f32)])


class TestFailureReporting:
    def test_failure_names_pass_and_position(self):
        manager = PassManager([NoOpPass(), AddConstantPass(), ExplodingPass()])
        with pytest.raises(PassFailedException) as excinfo:
            manager.run(build_module())
        message = str(excinfo.value)
        assert "pass 'exploding'" in message
        assert "position 3 of 3" in message
        assert "no-op,add-constant" in message
        assert "boom" in message

    def test_failure_in_first_pass_reports_pipeline_start(self):
        manager = PassManager([ExplodingPass(), NoOpPass()])
        with pytest.raises(PassFailedException) as excinfo:
            manager.run(build_module())
        message = str(excinfo.value)
        assert "position 1 of 2" in message
        assert "start of the pipeline" in message

    def test_pass_failed_exception_is_enriched_not_swallowed(self):
        class Failing(ModulePass):
            name = "failing"

            def apply(self, module):
                raise PassFailedException("inner detail")

        manager = PassManager([Failing()])
        with pytest.raises(PassFailedException) as excinfo:
            manager.run(build_module())
        assert "inner detail" in str(excinfo.value)
        assert "pass 'failing'" in str(excinfo.value)


class TestStatistics:
    def test_statistics_recorded_per_pass(self):
        manager = PassManager([NoOpPass(), AddConstantPass()])
        statistics = manager.run(build_module())
        assert manager.statistics is statistics
        assert [stat.name for stat in statistics.passes] == ["no-op", "add-constant"]
        add_stat = statistics.by_name("add-constant")
        assert add_stat.position == 1
        assert add_stat.ops_before == 2  # module + constant
        assert add_stat.ops_after == 3
        assert add_stat.op_delta == 1
        assert all(stat.wall_time >= 0 for stat in statistics.passes)

    def test_rewrites_attributed_to_pass(self):
        from repro.ir import apply_patterns_greedily
        from repro.transforms.canonicalize import RemoveDeadPureOps

        class DcePass(ModulePass):
            name = "dce"

            def apply(self, module):
                apply_patterns_greedily(module, RemoveDeadPureOps())

        statistics = PassManager([DcePass()]).run(build_module())
        assert statistics.by_name("dce").rewrites == 1
        assert statistics.total_rewrites == 1

    def test_format_table_lists_every_pass(self):
        statistics = PassManager([NoOpPass(), AddConstantPass()]).run(build_module())
        table = statistics.format_table()
        assert "no-op" in table
        assert "add-constant" in table
        assert "total" in table

    def test_timing_env_knob_prints_table(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PASS_TIMING", "1")
        PassManager([NoOpPass()]).run(build_module())
        captured = capsys.readouterr()
        assert "no-op" in captured.err

    def test_timing_disabled_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PASS_TIMING", raising=False)
        PassManager([NoOpPass()]).run(build_module())
        assert capsys.readouterr().err == ""
