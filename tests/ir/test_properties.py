"""Property-based tests (hypothesis) on IR and transformation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, varith
from repro.dialects.builtin import ModuleOp
from repro.ir import f32
from repro.ir.printer import print_module
from repro.transforms.arith_to_varith import ArithToVarithPass
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.varith_fuse_repeated_operands import (
    VarithFuseRepeatedOperandsPass,
)


def _evaluate_module(module: ModuleOp) -> float:
    """Evaluate a module of pure constant arithmetic.

    The value returned from the module's function (kept alive by its
    ``func.return``) is the result; this keeps the chain live across passes
    that perform dead-code elimination.
    """
    from repro.dialects import func as func_dialect

    values: dict[int, float] = {}
    result = 0.0
    returns: list[float] = []
    for op in module.walk():
        if isinstance(op, arith.ConstantOp):
            values[id(op.results[0])] = float(op.value)
            result = values[id(op.results[0])]
        elif isinstance(op, (arith.AddfOp, arith.SubfOp, arith.MulfOp)):
            lhs = values[id(op.lhs)]
            rhs = values[id(op.rhs)]
            combined = {
                arith.AddfOp: lhs + rhs,
                arith.SubfOp: lhs - rhs,
                arith.MulfOp: lhs * rhs,
            }[type(op)]
            values[id(op.results[0])] = combined
            result = combined
        elif isinstance(op, varith.AddOp):
            total = sum(values[id(operand)] for operand in op.operands)
            values[id(op.results[0])] = total
            result = total
        elif isinstance(op, varith.MulOp):
            product = 1.0
            for operand in op.operands:
                product *= values[id(operand)]
            values[id(op.results[0])] = product
            result = product
        elif isinstance(op, func_dialect.ReturnOp) and op.operands:
            returns.append(values[id(op.operands[0])])
    return returns[0] if returns else result


def _build_chain(constants: list[float], operators: list[int]) -> ModuleOp:
    """Build a left-to-right chain of +/* over the given constants, wrapped in
    a function whose return keeps the final value live under DCE."""
    from repro.dialects import func as func_dialect
    from repro.ir.types import FunctionType

    ops = [arith.ConstantOp(constants[0], f32)]
    current = ops[0].results[0]
    for value, operator in zip(constants[1:], operators):
        constant = arith.ConstantOp(value, f32)
        ops.append(constant)
        op_type = arith.AddfOp if operator == 0 else arith.MulfOp
        combined = op_type(current, constant.results[0])
        ops.append(combined)
        current = combined.results[0]
    ops.append(func_dialect.ReturnOp([current]))
    wrapper = func_dialect.FuncOp("chain", FunctionType([], [f32]))
    wrapper.body.block.add_ops(ops)
    return ModuleOp([wrapper])


class TestArithmeticPreservation:
    @given(
        constants=st.lists(
            st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
            min_size=2,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_varith_conversion_preserves_value(self, constants, seed):
        rng = np.random.default_rng(seed)
        operators = [int(rng.integers(0, 2)) for _ in range(len(constants) - 1)]
        module = _build_chain(constants, operators)
        expected = _evaluate_module(module)
        ArithToVarithPass().apply(module)
        module.verify()
        assert np.isclose(_evaluate_module(module), expected, rtol=1e-5, atol=1e-6)

    @given(
        value=st.floats(min_value=-4, max_value=4, allow_nan=False, width=32),
        repeats=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuse_repeated_operands_preserves_value(self, value, repeats):
        constant = arith.ConstantOp(value, f32)
        add = varith.AddOp([constant.results[0]] * repeats)
        module = ModuleOp([constant, add])
        expected = value * repeats
        VarithFuseRepeatedOperandsPass().apply(module)
        module.verify()
        assert np.isclose(_evaluate_module(module), expected, rtol=1e-5, atol=1e-5)

    @given(
        constants=st.lists(
            st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_canonicalize_preserves_value(self, constants):
        operators = [0] * (len(constants) - 1)
        module = _build_chain(constants, operators)
        expected = _evaluate_module(module)
        CanonicalizePass().apply(module)
        module.verify()
        assert np.isclose(_evaluate_module(module), expected, rtol=1e-5, atol=1e-5)


class TestPrinterTotality:
    @given(
        constants=st.lists(
            st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_printer_never_fails_and_mentions_every_op(self, constants):
        module = _build_chain(constants, [0] * (len(constants) - 1))
        text = print_module(module)
        assert text.count("arith.constant") == len(constants)


class TestCloneIsomorphism:
    @given(
        constants=st.lists(
            st.floats(min_value=-8, max_value=8, allow_nan=False, width=32),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_clone_evaluates_identically(self, constants):
        module = _build_chain(constants, [1] * (len(constants) - 1))
        clone = module.clone()
        assert np.isclose(
            _evaluate_module(module), _evaluate_module(clone), rtol=1e-6, atol=1e-6
        )
        clone.verify()
