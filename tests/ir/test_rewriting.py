"""Unit tests for the pattern rewriting infrastructure."""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.ir import (
    PatternRewriteWalker,
    PatternRewriter,
    RewritePattern,
    VerifyException,
    f32,
)
from repro.ir.rewriting import GreedyRewritePatternApplier


class FoldAddOfConstants(RewritePattern):
    """Constant-fold additions of two arith.constant values."""

    def match_and_rewrite(self, op, rewriter: PatternRewriter):
        if not isinstance(op, arith.AddfOp):
            return
        lhs, rhs = op.lhs.owner(), op.rhs.owner()
        if not (isinstance(lhs, arith.ConstantOp) and isinstance(rhs, arith.ConstantOp)):
            return
        folded = arith.ConstantOp(lhs.value + rhs.value, op.result.type)
        rewriter.replace_matched_op(folded)


class RemoveDeadConstants(RewritePattern):
    def match_and_rewrite(self, op, rewriter: PatternRewriter):
        if isinstance(op, arith.ConstantOp) and not op.result.has_uses:
            rewriter.erase_matched_op()


def build_add_module():
    c0 = arith.ConstantOp(1.0, f32)
    c1 = arith.ConstantOp(2.0, f32)
    add = arith.AddfOp(c0.result, c1.result)
    user = arith.MulfOp(add.result, add.result)
    return ModuleOp([c0, c1, add, user])


class TestPatternRewriting:
    def test_constant_folding(self):
        module = build_add_module()
        changed = PatternRewriteWalker(FoldAddOfConstants()).rewrite_module(module)
        assert changed
        adds = list(module.walk_type(arith.AddfOp))
        assert adds == []
        constants = [op.value for op in module.walk_type(arith.ConstantOp)]
        assert 3.0 in constants

    def test_uses_rewired_after_replace(self):
        module = build_add_module()
        PatternRewriteWalker(FoldAddOfConstants()).rewrite_module(module)
        mul = next(iter(module.walk_type(arith.MulfOp)))
        folded = mul.operands[0].owner()
        assert isinstance(folded, arith.ConstantOp)
        assert folded.value == 3.0

    def test_fixpoint_with_multiple_patterns(self):
        module = build_add_module()
        pattern = GreedyRewritePatternApplier(
            [FoldAddOfConstants(), RemoveDeadConstants()]
        )
        PatternRewriteWalker(pattern).rewrite_module(module)
        # The original constants become dead after folding and are removed.
        constants = list(module.walk_type(arith.ConstantOp))
        assert len(constants) == 1
        assert constants[0].value == 3.0

    def test_no_change_returns_false(self):
        module = ModuleOp([arith.ConstantOp(1.0, f32)])
        changed = PatternRewriteWalker(FoldAddOfConstants()).rewrite_module(module)
        assert not changed

    def test_module_verifies_after_rewrites(self):
        module = build_add_module()
        PatternRewriteWalker(
            GreedyRewritePatternApplier([FoldAddOfConstants(), RemoveDeadConstants()])
        ).rewrite_module(module)
        module.verify()


class TestRewriterPrimitives:
    def test_insert_before(self):
        module = build_add_module()
        add = next(iter(module.walk_type(arith.AddfOp)))
        rewriter = PatternRewriter(add)
        new_const = arith.ConstantOp(7.0, f32)
        rewriter.insert_op_before_matched_op(new_const)
        assert module.ops.index(new_const) == module.ops.index(add) - 1

    def test_replace_result_count_mismatch_raises(self):
        module = build_add_module()
        add = next(iter(module.walk_type(arith.AddfOp)))
        rewriter = PatternRewriter(add)
        with pytest.raises(VerifyException):
            rewriter.replace_op(add, [], new_results=[])
