"""Unit tests for type attributes."""

import pytest

from repro.ir.types import (
    Float32Type,
    Float64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    TensorType,
    element_bytes,
    f32,
    f64,
    i16,
    i32,
)


class TestScalarTypes:
    def test_integer_width(self):
        assert IntegerType(32).width == 32
        assert str(IntegerType(16)) == "i16"

    def test_integer_equality(self):
        assert IntegerType(32) == i32
        assert IntegerType(16) == i16
        assert IntegerType(32) != IntegerType(64)

    def test_float_types(self):
        assert str(f32) == "f32"
        assert str(f64) == "f64"
        assert Float32Type() == f32
        assert f32 != f64

    def test_index_type(self):
        assert IndexType() == IndexType()
        assert str(IndexType()) == "index"


class TestShapedTypes:
    def test_tensor_type(self):
        t = TensorType([512], f32)
        assert t.shape == (512,)
        assert t.rank == 1
        assert t.element_type == f32
        assert str(t) == "tensor<512xf32>"

    def test_tensor_equality(self):
        assert TensorType([4, 255], f32) == TensorType([4, 255], f32)
        assert TensorType([4], f32) != TensorType([5], f32)
        assert TensorType([4], f32) != MemRefType([4], f32)

    def test_memref_type(self):
        m = MemRefType([510], f32)
        assert str(m) == "memref<510xf32>"
        assert m.element_count() == 510

    def test_element_count_multi_dim(self):
        assert TensorType([4, 255], f32).element_count() == 1020

    def test_function_type(self):
        ft = FunctionType([f32, f32], [f32])
        assert ft.inputs == (f32, f32)
        assert ft.outputs == (f32,)
        assert FunctionType([], []) == FunctionType([], [])


class TestElementBytes:
    def test_f32_is_four_bytes(self):
        assert element_bytes(f32) == 4

    def test_f64_is_eight_bytes(self):
        assert element_bytes(f64) == 8

    def test_i16_is_two_bytes(self):
        assert element_bytes(i16) == 2

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            element_bytes(TensorType([4], f32))
