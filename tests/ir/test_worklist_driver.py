"""Edge-case tests for the worklist-based greedy rewrite driver."""

import pytest

from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.ir import (
    GreedyRewriteDriver,
    PatternRewriter,
    RewritePattern,
    TypedPattern,
    VerifyException,
    apply_patterns_greedily,
    f32,
    op_rewrite_pattern,
    use_restarting_driver,
)
from repro.ir.operation import Block, Operation, Region, UnregisteredOp
from repro.ir.rewriting import GreedyRewritePatternApplier
from repro.ir.traits import Pure


class FooOp(Operation):
    name = "test.foo"


class BarOp(Operation):
    name = "test.bar"


class BazOp(Operation):
    name = "test.baz"


class FooToBar(RewritePattern):
    @op_rewrite_pattern
    def match_and_rewrite(self, op: FooOp, rewriter: PatternRewriter) -> None:
        rewriter.replace_matched_op(BarOp())


class BarToBaz(RewritePattern):
    @op_rewrite_pattern
    def match_and_rewrite(self, op: BarOp, rewriter: PatternRewriter) -> None:
        rewriter.replace_matched_op(BazOp())


class TestTypeDispatch:
    def test_decorator_records_root_types(self):
        assert FooToBar().root_op_types() == (FooOp,)

    def test_decorator_union_annotation(self):
        class Multi(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(
                self, op: FooOp | BarOp, rewriter: PatternRewriter
            ) -> None:
                pass

        assert set(Multi().root_op_types()) == {FooOp, BarOp}

    def test_typed_pattern_root_types(self):
        class Typed(TypedPattern):
            op_type = FooOp

        assert Typed().root_op_types() == (FooOp,)

    def test_pattern_without_annotation_matches_any(self):
        class AnyPattern(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                pass

        assert AnyPattern().root_op_types() is None

    def test_dispatch_skips_non_matching_op_classes(self):
        calls = []

        class Counting(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(self, op: arith.AddfOp, rewriter) -> None:
                calls.append(op)

        c0 = arith.ConstantOp(1.0, f32)
        c1 = arith.ConstantOp(2.0, f32)
        add = arith.AddfOp(c0.result, c1.result)
        module = ModuleOp([c0, c1, add])

        driver = GreedyRewriteDriver(Counting())
        driver.rewrite_module(module)
        # Dispatch never ran the pattern for the constants or the module.
        assert calls == [add]

    def test_applier_union_preserves_order(self):
        applier = GreedyRewritePatternApplier([FooToBar(), BarToBaz()])
        assert set(applier.root_op_types()) == {FooOp, BarOp}


class TestWorklistReEnqueue:
    def test_created_ops_are_rewritten_in_same_run(self):
        """A rewrite chain foo -> bar -> baz converges in one driver run."""
        module = ModuleOp([FooOp(), FooOp()])
        changed = apply_patterns_greedily(module, [FooToBar(), BarToBaz()])
        assert changed
        kinds = [type(op) for op in module.ops]
        assert kinds == [BazOp, BazOp]

    def test_dead_definer_cascade(self):
        """Erasing a user re-enqueues its operand definers, so a whole dead
        chain disappears in one run."""

        class RemoveDeadPure(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                if Pure not in op.traits or not op.results:
                    return
                if any(result.has_uses for result in op.results):
                    return
                rewriter.erase_matched_op()

        c0 = arith.ConstantOp(1.0, f32)
        c1 = arith.ConstantOp(2.0, f32)
        add = arith.AddfOp(c0.result, c1.result)  # unused
        module = ModuleOp([c0, c1, add])
        apply_patterns_greedily(module, RemoveDeadPure())
        assert list(module.ops) == []

    def test_no_change_returns_false(self):
        module = ModuleOp([BazOp()])
        assert not apply_patterns_greedily(module, [FooToBar(), BarToBaz()])


class TestEraseEdgeCases:
    def test_erasing_op_with_used_results_raises(self):
        class BadErase(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(
                self, op: arith.ConstantOp, rewriter: PatternRewriter
            ) -> None:
                rewriter.erase_matched_op()

        c0 = arith.ConstantOp(1.0, f32)
        c1 = arith.ConstantOp(2.0, f32)
        add = arith.AddfOp(c0.result, c1.result)
        module = ModuleOp([c0, c1, add])
        with pytest.raises(VerifyException, match="still has uses"):
            apply_patterns_greedily(module, BadErase())

    def test_nested_region_op_erased_mid_walk(self):
        """Ops inside an erased enclosing op must not be rewritten, even
        though only the subtree root was detached."""
        rewritten_inside_detached = []

        class EraseOuter(RewritePattern):
            def match_and_rewrite(self, op, rewriter):
                if isinstance(op, UnregisteredOp) and op.name == "test.outer":
                    rewriter.erase_matched_op()

        class TrackFoo(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(self, op: FooOp, rewriter: PatternRewriter):
                rewritten_inside_detached.append(op)
                rewriter.replace_matched_op(BarOp())

        inner = [FooOp(), FooOp()]
        outer = UnregisteredOp(
            "test.outer", regions=[Region([Block(ops=inner)])]
        )
        module = ModuleOp([outer])
        apply_patterns_greedily(module, [EraseOuter(), TrackFoo()])
        assert list(module.ops) == []
        # The seeded inner ops were skipped once their ancestor was erased.
        assert rewritten_inside_detached == []


class TestConvergenceBound:
    def test_non_converging_pattern_hits_rewrite_bound(self):
        class Flip(RewritePattern):
            @op_rewrite_pattern
            def match_and_rewrite(self, op: FooOp, rewriter: PatternRewriter):
                rewriter.replace_matched_op(FooOp())

        module = ModuleOp([FooOp()])
        driver = GreedyRewriteDriver(Flip(), max_rewrites=25)
        with pytest.raises(VerifyException, match="did not converge"):
            driver.rewrite_module(module)

    def test_rewrite_count_reported(self):
        module = ModuleOp([FooOp(), FooOp(), FooOp()])
        driver = GreedyRewriteDriver([FooToBar(), BarToBaz()])
        driver.rewrite_module(module)
        assert driver.num_rewrites == 6  # two rewrites per foo


class TestDriverEquivalenceSmall:
    def test_matches_restarting_walker_on_dce_chain(self):
        def build():
            c0 = arith.ConstantOp(1.0, f32)
            c1 = arith.ConstantOp(2.0, f32)
            add = arith.AddfOp(c0.result, c1.result)
            mul = arith.MulfOp(add.result, add.result)
            return ModuleOp([c0, c1, add, mul])

        from repro.transforms.canonicalize import (
            FlattenSingleOperandVarith,
            FoldConstantArith,
            RemoveDeadPureOps,
        )

        patterns = lambda: [
            FoldConstantArith(),
            FlattenSingleOperandVarith(),
            RemoveDeadPureOps(),
        ]
        from repro.ir.printer import print_module

        worklist_module = build()
        apply_patterns_greedily(worklist_module, patterns())
        restart_module = build()
        with use_restarting_driver():
            apply_patterns_greedily(restart_module, patterns())
        assert print_module(worklist_module) == print_module(restart_module)
