"""Service-test isolation: every test gets a private artifact store."""

import pytest

from repro.service import REPRO_CACHE_DIR_ENV, reset_default_service


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the store at a per-test directory and drop the shared service."""
    store = tmp_path / "artifact-store"
    monkeypatch.setenv(REPRO_CACHE_DIR_ENV, str(store))
    reset_default_service()
    yield store
    reset_default_service()
