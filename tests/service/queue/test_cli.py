"""``python -m repro.service queue ...`` — the queue CLI verbs."""

import io
import re

from repro.service.cli import main as cli_main


def _run(argv):
    out = io.StringIO()
    code = cli_main(argv, out=out)
    return code, out.getvalue()


def _job_ids(text):
    return sorted({int(match) for match in re.findall(r"job (\d+)", text)})


class TestQueueCli:
    def test_submit_executes_the_batch_and_prints_digests(self):
        code, text = _run(
            [
                "queue", "submit", "Jacobian", "UVKBE",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--inline",
            ]
        )
        assert code == 0
        assert text.count("submitted job") == 2
        assert "done" in text
        assert "=" in text  # the per-field digest summary lines
        assert "job queue statistics:" in text
        assert "completed 2" in text

    def test_detach_then_wait_drains_the_queue(self):
        code, text = _run(
            [
                "queue", "submit", "Jacobian",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--detach",
            ]
        )
        assert code == 0
        assert "1 job(s) submitted, 1 pending" in text
        (job_id,) = _job_ids(text)

        code, text = _run(["queue", "status", str(job_id)])
        assert code == 0
        assert "queued" in text

        code, text = _run(["queue", "wait", "--inline"])
        assert code == 0
        assert "done" in text

        code, text = _run(["queue", "status", str(job_id), "--events"])
        assert code == 0
        assert "queued -> compiling" in text
        assert "digesting -> done" in text

    def test_resubmission_after_wait_is_served_from_cache(self):
        argv = [
            "queue", "submit", "Jacobian",
            "--grid", "3x3", "--nz", "8", "--time-steps", "1",
            "--executor", "vectorized", "--inline",
        ]
        code, _ = _run(argv)
        assert code == 0
        code, text = _run(argv)
        assert code == 0
        assert "resumed-from-cache 1" in text
        assert "served from run-cache" in text

    def test_list_rolls_up_experiments(self):
        code, text = _run(
            [
                "queue", "submit", "Jacobian", "UVKBE",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--inline",
                "--experiment", "cli-sweep",
            ]
        )
        assert code == 0
        code, text = _run(["queue", "list", "--experiment", "cli-sweep"])
        assert code == 0
        assert "[cli-sweep]" in text
        assert "cli-sweep: 2/2 finished" in text
        code, text = _run(["queue", "list", "--status", "failed"])
        assert code == 0
        assert "no jobs" in text

    def test_cancel_only_touches_queued_jobs(self, capsys):
        code, text = _run(
            [
                "queue", "submit", "Jacobian",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--detach",
            ]
        )
        (job_id,) = _job_ids(text)
        code, text = _run(["queue", "cancel", str(job_id)])
        assert code == 0
        assert f"job {job_id}: cancelled" in text
        # A second cancel refuses: the job is no longer queued.
        code, _ = _run(["queue", "cancel", str(job_id)])
        assert code == 1
        assert "not cancellable" in capsys.readouterr().err

    def test_queue_stats_reports_the_store(self):
        _run(
            [
                "queue", "submit", "Jacobian",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--inline",
            ]
        )
        code, text = _run(["queue", "stats"])
        assert code == 0
        assert "queue store:" in text
        assert "jobs:      1 (done 1)" in text
        assert "simulated" in text

    def test_unknown_benchmark_is_a_friendly_error(self, capsys):
        code, _ = _run(["queue", "submit", "NotABench", "--detach"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_unknown_job_id_is_a_friendly_error(self, capsys):
        code, _ = _run(["queue", "status", "424242"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err


class TestCombinedStats:
    def test_stats_is_one_table_across_all_stores(self):
        _run(
            [
                "queue", "submit", "Jacobian",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--inline",
            ]
        )
        code, text = _run(["stats"])
        assert code == 0
        header, *rows = [
            line for line in text.splitlines() if line.strip()
        ]
        assert header.split() == [
            "store", "entries", "bytes", "hits", "misses", "hit", "rate"
        ]
        names = [row.split()[0] for row in rows[:4]]
        assert names == ["compile", "run", "kernel", "queue"]
        queue_row = rows[3].split()
        assert queue_row[1] == "1"  # one job in the store
        assert "queue store:" in text

    def test_purge_also_empties_the_queue_store(self):
        _run(
            [
                "queue", "submit", "Jacobian",
                "--grid", "3x3", "--nz", "8", "--time-steps", "1",
                "--executor", "vectorized", "--inline",
            ]
        )
        code, text = _run(["purge"])
        assert code == 0
        assert "purged 1 queue jobs" in text
        code, text = _run(["queue", "stats"])
        assert "jobs:      0" in text
