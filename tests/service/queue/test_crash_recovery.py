"""Crash recovery: killed workers, bounded retries, daemon restarts.

The satellite contract: kill a worker mid-job, assert the store marks the
job retryable, and a fresh worker completes it with a byte-identical
artifact.  Process-mode tests need ``fork``; the deterministic mid-job
window comes from the ``REPRO_QUEUE_HOLD_FILE`` hook (a worker that has
just entered ``running`` spins while the file exists).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.queue import JobQueue, JobStatus
from repro.service.queue.workers import HOLD_FILE_ENV
from repro.service.run import RunService
from repro.transforms.pipeline import PipelineOptions

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="process-mode workers need fork"
)


def _config(grid=3):
    program = benchmark_by_name("Jacobian").program(
        nx=grid, ny=grid, nz=8, time_steps=1
    )
    return program, PipelineOptions(grid_width=grid, grid_height=grid)


@pytest.fixture
def hold_file(tmp_path, monkeypatch):
    path = tmp_path / "hold-the-job"
    path.touch()
    monkeypatch.setenv(HOLD_FILE_ENV, str(path))
    return path


def _wait_for_status(handle, status, timeout=60.0):
    deadline = time.monotonic() + timeout
    while handle.status() is not status:
        assert time.monotonic() < deadline, (
            f"job {handle.job_id} never reached {status} "
            f"(stuck at {handle.status()})"
        )
        time.sleep(0.01)


def _kill_worker_of(queue, handle):
    """SIGKILL the child process executing the handle's job."""
    deadline = time.monotonic() + 60.0
    while True:
        pid = queue.active_processes().get(handle.job_id)
        if pid is not None:
            os.kill(pid, signal.SIGKILL)
            return pid
        assert time.monotonic() < deadline
        time.sleep(0.01)


class TestWorkerDeath:
    @needs_fork
    def test_killed_worker_marks_the_job_retryable_and_it_completes(
        self, hold_file
    ):
        program, options = _config()
        with JobQueue(workers=1, mode="process", retry_backoff=0.01) as queue:
            handle = queue.submit(program, options, executor="vectorized")
            _wait_for_status(handle, JobStatus.RUNNING)
            _kill_worker_of(queue, handle)
            # Let the pool observe the death and requeue before releasing
            # the hold, so the retry (not the victim) finishes the job.
            deadline = time.monotonic() + 60.0
            while queue.statistics.retried == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            hold_file.unlink()
            record = handle.wait(timeout=300)

        assert record.status is JobStatus.DONE
        assert record.attempts == 2  # the death cost exactly one retry
        details = " | ".join(
            event.detail or "" for event in handle.events()
        )
        assert "worker died during running" in details
        assert "retrying (attempt 1/3 spent)" in details

        # The recovered artifact is byte-identical to an undisturbed
        # synchronous run of the same configuration in a separate cache.
        artifact = handle.result()
        sync_cache = os.environ["REPRO_CACHE_DIR"] + "-sync"
        with RunService(cache_dir=sync_cache) as service:
            undisturbed = service.run(program, options, executor="vectorized")
        assert artifact.field_digests == undisturbed.field_digests

    @needs_fork
    def test_attempt_budget_bounds_the_retries(self, hold_file):
        program, options = _config()
        with JobQueue(
            workers=1, mode="process", retry_backoff=0.01, max_attempts=2
        ) as queue:
            handle = queue.submit(program, options, executor="vectorized")
            # Kill attempt one, wait for the requeue, kill attempt two.
            _wait_for_status(handle, JobStatus.RUNNING)
            _kill_worker_of(queue, handle)
            deadline = time.monotonic() + 60.0
            while queue.statistics.retried < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            _wait_for_status(handle, JobStatus.RUNNING)
            _kill_worker_of(queue, handle)
            record = handle.wait(timeout=300)
        assert record.status is JobStatus.FAILED
        assert "attempts exhausted: 2/2" in record.error

    @needs_fork
    def test_cancelling_an_active_job_terminates_its_worker(self, hold_file):
        program, options = _config()
        with JobQueue(workers=1, mode="process") as queue:
            handle = queue.submit(program, options, executor="vectorized")
            _wait_for_status(handle, JobStatus.RUNNING)
            queue.cancel(handle.job_id)
            record = handle.wait(timeout=300)
        assert record.status is JobStatus.CANCELLED
        assert "cancelled while running" in (handle.events()[-1].detail or "")


class TestDaemonRestart:
    def test_orphaned_jobs_are_recovered_and_completed_on_restart(self):
        """Simulate a daemon crash: jobs left in active states by a dead
        process are requeued by the next daemon and run to completion."""
        program, options = _config()
        with JobQueue(workers=0, mode="inline", recover=False) as dead:
            handle = dead.submit(program, options, executor="vectorized")
            # The "crash": a worker claimed the job, then the daemon died.
            dead.store.claim_next("worker-of-a-dead-daemon")
            assert handle.status() is JobStatus.COMPILING

        with JobQueue(workers=1, mode="inline") as restarted:
            assert restarted.statistics.recovered == 1
            fresh = restarted.handle(handle.job_id)
            record = fresh.wait(timeout=300)
        assert record.status is JobStatus.DONE
        assert record.attempts == 2  # the orphaned claim spent one attempt
        details = " | ".join(event.detail or "" for event in fresh.events())
        assert "orphaned (daemon restart)" in details

    def test_restart_does_not_touch_terminal_or_queued_jobs(self):
        program, options = _config()
        with JobQueue(workers=2, mode="inline", recover=False) as first:
            done = first.submit(program, options, executor="vectorized")
            done.wait(timeout=300)
        with JobQueue(workers=0, mode="inline") as second:
            assert second.statistics.recovered == 0
            assert second.handle(done.job_id).status() is JobStatus.DONE
