"""Named experiments: grouping, aggregate progress, resumability."""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.queue import JobQueue, JobStatus, SweepConfig
from repro.service.queue.experiments import normalize_configs
from repro.transforms.pipeline import PipelineOptions


def _program(name="Jacobian", grid=3):
    return benchmark_by_name(name).program(
        nx=grid, ny=grid, nz=8, time_steps=1
    )


def _options(grid=3):
    return PipelineOptions(grid_width=grid, grid_height=grid)


def _sweep():
    return [
        SweepConfig(program=_program("Jacobian"), options=_options()),
        SweepConfig(program=_program("UVKBE"), options=_options()),
        SweepConfig(
            program=_program("Jacobian"), options=_options(), seed=99
        ),
    ]


class TestNormalization:
    def test_accepts_programs_pairs_and_configs(self):
        program = _program()
        configs = normalize_configs(
            [program, (program, _options()), SweepConfig(program=program)]
        )
        assert len(configs) == 3
        assert all(isinstance(c, SweepConfig) for c in configs)
        assert configs[1].options is not None

    def test_rejects_junk_and_empty_sweeps(self):
        with pytest.raises(TypeError, match="sweep configs"):
            normalize_configs(["Jacobian"])
        with pytest.raises(ValueError, match="at least one"):
            normalize_configs([])


class TestExperiments:
    def test_experiment_completes_and_aggregates_progress(self):
        with JobQueue(workers=2, mode="inline") as queue:
            experiment = queue.submit_experiment(
                "sweep-1", _sweep(), executor="vectorized"
            )
            progress = experiment.wait(timeout=300)
        assert progress.name == "sweep-1"
        assert progress.total == 3
        assert progress.done
        assert progress.counts[JobStatus.DONE] == 3
        assert progress.fraction == 1.0
        assert "3/3 finished" in progress.format()
        artifacts = experiment.results()
        assert len(artifacts) == 3
        # The seed=99 point is a distinct run of the same program.
        assert artifacts[0].fingerprint != artifacts[2].fingerprint

    def test_experiment_name_is_stamped_on_the_jobs(self):
        with JobQueue(workers=0, mode="inline") as queue:
            queue.submit_experiment("sweep-2", _sweep(), executor="vectorized")
            records = queue.store.list_jobs(experiment="sweep-2")
        assert len(records) == 3
        assert all(record.experiment == "sweep-2" for record in records)

    def test_resubmission_is_served_entirely_from_the_run_cache(self):
        """The resumability contract: a warm resubmission of the same
        experiment queues nothing and simulates nothing."""
        with JobQueue(workers=2, mode="inline") as queue:
            queue.submit_experiment(
                "sweep-3", _sweep(), executor="vectorized"
            ).wait(timeout=300)
        with JobQueue(workers=0, mode="inline") as fresh:  # no workers at all
            experiment = fresh.submit_experiment(
                "sweep-3", _sweep(), executor="vectorized"
            )
            progress = experiment.progress()
            assert progress.done  # terminal without any worker running
            assert fresh.statistics.resumed_from_cache == 3
            assert all(
                record.served_from == "run-cache"
                for record in fresh.store.list_jobs(experiment="sweep-3")
                if record.status is JobStatus.DONE
                and record.id in experiment.job_ids
            )

    def test_partial_completion_resumes_only_the_missing_points(self):
        sweep = _sweep()
        with JobQueue(workers=2, mode="inline") as queue:
            queue.submit_experiment(
                "warmup", sweep[:2], executor="vectorized"
            ).wait(timeout=300)
        with JobQueue(workers=2, mode="inline") as resumed:
            experiment = resumed.submit_experiment(
                "full", sweep, executor="vectorized"
            )
            experiment.wait(timeout=300)
            assert resumed.statistics.resumed_from_cache == 2
        # Counted after close(): the worker threads have joined by then.
        assert resumed.statistics.completed == 1  # only the new point ran
