"""The lifecycle state machine: legal edges, terminal states, events."""

import pytest

from repro.service.queue.lifecycle import (
    ACTIVE_STATES,
    IllegalTransitionError,
    JobEvent,
    JobStatus,
    LEGAL_TRANSITIONS,
    PENDING_STATES,
    TERMINAL_STATES,
    ensure_transition,
)


class TestStateMachine:
    def test_the_happy_path_is_legal(self):
        path = [
            JobStatus.QUEUED,
            JobStatus.COMPILING,
            JobStatus.RUNNING,
            JobStatus.DIGESTING,
            JobStatus.DONE,
        ]
        for current, to in zip(path, path[1:]):
            ensure_transition(current, to)

    def test_terminal_states_have_no_exits(self):
        for terminal in TERMINAL_STATES:
            assert LEGAL_TRANSITIONS[terminal] == frozenset()
            for to in JobStatus:
                with pytest.raises(IllegalTransitionError):
                    ensure_transition(terminal, to)

    def test_every_active_state_can_retry_fail_or_cancel(self):
        for active in ACTIVE_STATES:
            ensure_transition(active, JobStatus.QUEUED)  # the retry edge
            ensure_transition(active, JobStatus.FAILED)
            ensure_transition(active, JobStatus.CANCELLED)

    def test_queued_cannot_skip_ahead(self):
        for to in (JobStatus.RUNNING, JobStatus.DIGESTING, JobStatus.DONE):
            with pytest.raises(IllegalTransitionError, match="illegal"):
                ensure_transition(JobStatus.QUEUED, to)

    def test_only_digesting_reaches_done(self):
        sources = [
            current
            for current in JobStatus
            if JobStatus.DONE in LEGAL_TRANSITIONS[current]
        ]
        assert sources == [JobStatus.DIGESTING]

    def test_error_message_names_the_alternatives(self):
        with pytest.raises(IllegalTransitionError, match="compiling"):
            ensure_transition(JobStatus.QUEUED, JobStatus.DONE)
        with pytest.raises(IllegalTransitionError, match="terminal"):
            ensure_transition(JobStatus.DONE, JobStatus.QUEUED)

    def test_state_partitions_are_disjoint_and_complete(self):
        assert not (PENDING_STATES & TERMINAL_STATES)
        assert PENDING_STATES | TERMINAL_STATES == frozenset(JobStatus)

    def test_status_prints_its_value(self):
        assert str(JobStatus.QUEUED) == "queued"
        assert f"{JobStatus.RUNNING}" == "running"


class TestJobEvent:
    def test_format_includes_detail_and_worker(self):
        event = JobEvent(
            event_id=1,
            job_id=7,
            from_status=JobStatus.QUEUED,
            to_status=JobStatus.COMPILING,
            at=0.0,
            detail="claimed (attempt 1/3)",
            worker="worker-0@123",
        )
        text = event.format()
        assert "queued -> compiling" in text
        assert "claimed (attempt 1/3)" in text
        assert "[worker-0@123]" in text

    def test_submission_event_has_no_origin(self):
        event = JobEvent(
            event_id=1,
            job_id=7,
            from_status=None,
            to_status=JobStatus.QUEUED,
            at=0.0,
        )
        assert event.format().startswith("- -> queued")
