"""The acceptance run: a 16-job mixed-executor batch through the queue.

The ISSUE's bar, verbatim: the batch completes with per-field digests
byte-identical to synchronous ``RunService.run``, survives a simulated
worker death with at most one retry of the affected job, and a warm
resubmission of the same experiment is served entirely from the run cache
(0 new simulations).

The queue and the synchronous reference deliberately use *separate* cache
directories — sharing one would let the queue serve the reference's
artifacts (or vice versa) and make the byte-identity comparison vacuous.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.queue import JobQueue, JobStatus
from repro.service.queue.workers import HOLD_FILE_ENV
from repro.service.run import RunService
from repro.transforms.pipeline import PipelineOptions

BENCHMARKS = ("Jacobian", "Diffusion", "UVKBE", "Advection")
EXECUTORS = ("reference", "vectorized", "tiled", "compiled")

fork_available = "fork" in multiprocessing.get_all_start_methods()


def _sixteen_jobs():
    jobs = []
    for name in BENCHMARKS:
        program = benchmark_by_name(name).program(
            nx=4, ny=4, nz=8, time_steps=1
        )
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        for executor in EXECUTORS:
            jobs.append((program, options, executor))
    return jobs


class TestAcceptance:
    @pytest.mark.skipif(not fork_available, reason="needs process workers")
    def test_sixteen_job_batch_with_worker_death_and_warm_resubmission(
        self, tmp_path, monkeypatch
    ):
        jobs = _sixteen_jobs()
        queue_cache = tmp_path / "queue-cache"
        sync_cache = tmp_path / "sync-cache"
        hold = tmp_path / "hold"
        hold.touch()
        monkeypatch.setenv(HOLD_FILE_ENV, str(hold))

        # --- the batch through the queue, with one simulated worker death.
        with JobQueue(
            queue_cache, workers=2, mode="process", retry_backoff=0.01
        ) as queue:
            handles = [
                queue.submit(
                    program, options, executor=executor,
                    experiment="acceptance",
                )
                for program, options, executor in jobs
            ]
            assert len(handles) == 16

            # Kill whichever job first reaches `running` (the hold file
            # keeps it there), then release the hold for everyone.
            deadline = time.monotonic() + 120.0
            victim_pid = None
            while victim_pid is None:
                assert time.monotonic() < deadline, "no job reached running"
                for job_id, pid in queue.active_processes().items():
                    if queue.store.get(job_id).status is JobStatus.RUNNING:
                        victim = job_id
                        victim_pid = pid
                        break
                else:
                    time.sleep(0.01)
            os.kill(victim_pid, signal.SIGKILL)
            while queue.statistics.retried == 0:
                assert time.monotonic() < deadline, "death never observed"
                time.sleep(0.01)
            hold.unlink()

            for handle in handles:
                assert handle.wait(timeout=600).status is JobStatus.DONE

            # At most one retry of the affected job, none anywhere else.
            assert queue.statistics.retried == 1
            victim_record = queue.store.get(victim)
            assert victim_record.attempts == 2
            others = [h.record() for h in handles if h.job_id != victim]
            assert all(record.attempts == 1 for record in others)

        # --- byte-identical to the synchronous path, per field.
        monkeypatch.delenv(HOLD_FILE_ENV)
        with RunService(cache_dir=sync_cache) as service:
            for handle, (program, options, executor) in zip(handles, jobs):
                synchronous = service.run(program, options, executor=executor)
                queued = handle.result()
                assert queued.fingerprint == synchronous.fingerprint
                assert queued.field_digests == synchronous.field_digests, (
                    f"{program.name}/{executor} digests diverge"
                )
            assert service.statistics.simulations == 16  # truly independent

        # --- warm resubmission: all 16 resumed, 0 new simulations.
        with JobQueue(queue_cache, workers=0) as warm:
            resubmitted = [
                warm.submit(
                    program, options, executor=executor,
                    experiment="acceptance",
                )
                for program, options, executor in jobs
            ]
            assert warm.statistics.resumed_from_cache == 16
            assert all(
                handle.status() is JobStatus.DONE for handle in resubmitted
            )
            assert all(
                handle.record().served_from == "run-cache"
                for handle in resubmitted
            )
            # No worker ever ran in this daemon: nothing simulated.
            assert warm.statistics.completed == 0
