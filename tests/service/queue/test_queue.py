"""The JobQueue daemon: handles, futures, dedup, cache resume, events."""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.queue import (
    JobCancelledError,
    JobFailedError,
    JobQueue,
    JobStatus,
    UnknownJobError,
)
from repro.service.run import RunService, compute_run_fingerprint
from repro.transforms.pipeline import PipelineOptions


def _config(name="Jacobian", grid=3, nz=8, steps=1):
    program = benchmark_by_name(name).program(
        nx=grid, ny=grid, nz=nz, time_steps=steps
    )
    return program, PipelineOptions(grid_width=grid, grid_height=grid)


def _queue(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("mode", "inline")
    return JobQueue(**kwargs)


class TestSubmission:
    def test_submit_returns_immediately_and_the_job_completes(self):
        program, options = _config()
        with _queue() as queue:
            handle = queue.submit(program, options, executor="vectorized")
            record = handle.wait(timeout=120)
        assert record.status is JobStatus.DONE
        assert record.served_from == "simulation"
        assert record.attempts == 1
        artifact = handle.result()
        assert artifact.field_digests
        assert artifact.fingerprint == handle.fingerprint

    def test_the_fingerprint_matches_the_synchronous_path(self):
        program, options = _config()
        with _queue() as queue:
            handle = queue.submit(
                program, options, executor="vectorized", seed=7
            )
        assert handle.fingerprint == compute_run_fingerprint(
            program, options, "vectorized", 7, 1_000_000
        )

    def test_unknown_executor_is_rejected_before_queueing(self):
        program, options = _config()
        with _queue() as queue:
            with pytest.raises(KeyError, match="unknown executor 'warp'"):
                queue.submit(program, options, executor="warp")
            assert queue.store.counts()[JobStatus.QUEUED] == 0

    def test_in_flight_duplicates_share_one_job(self):
        program, options = _config()
        with _queue(workers=0) as queue:  # no workers: stays queued
            first = queue.submit(program, options, executor="vectorized")
            second = queue.submit(program, options, executor="vectorized")
            assert second.job_id == first.job_id
            assert queue.statistics.deduplicated == 1

    def test_cached_fingerprints_resume_without_queueing(self):
        program, options = _config()
        with RunService() as service:  # same REPRO_CACHE_DIR
            artifact = service.run(program, options, executor="vectorized")
        with _queue(workers=0) as queue:
            handle = queue.submit(program, options, executor="vectorized")
            assert handle.status() is JobStatus.DONE
            assert queue.statistics.resumed_from_cache == 1
            assert handle.record().served_from == "run-cache"
            assert handle.result() == artifact

    def test_completed_job_warms_the_shared_run_cache(self):
        program, options = _config()
        with _queue() as queue:
            queue.submit(program, options, executor="vectorized").wait(
                timeout=120
            )
        with RunService() as service:
            service.run(program, options, executor="vectorized")
            assert service.statistics.simulations == 0
            assert service.statistics.cache_hits == 1


class TestBatchRouting:
    def test_submit_batch_routes_through_the_queue(self):
        """``RunService.submit_batch(..., queue=...)`` keeps the future-list
        interface while the daemon's workers do the work."""
        jacobian = _config()
        uvkbe = _config("UVKBE")
        with _queue() as queue:
            with RunService() as service:
                futures = service.submit_batch(
                    [jacobian, uvkbe],
                    executor="vectorized",
                    queue=queue,
                    experiment="batch-routed",
                )
                artifacts = [future.result(timeout=120) for future in futures]
            assert service.statistics.simulations == 0  # the queue ran them
            records = queue.store.list_jobs(experiment="batch-routed")
        assert [artifact.program_name for artifact in artifacts] == [
            "jacobian",
            "uvkbe",
        ]
        assert len(records) == 2
        assert all(record.status is JobStatus.DONE for record in records)


class TestHandles:
    def test_failed_job_raises_from_result(self):
        program, options = _config()
        with _queue() as queue:
            # An impossible round budget fails deterministically mid-run.
            handle = queue.submit(
                program, options, executor="vectorized", max_rounds=1
            )
            record = handle.wait(timeout=120)
            assert record.status is JobStatus.FAILED
            assert record.attempts == 1  # execution errors are not retried
            assert "exceeded 1 rounds" in record.error
            with pytest.raises(JobFailedError, match="failed"):
                handle.result()

    def test_future_resolves_with_the_artifact(self):
        program, options = _config()
        with _queue() as queue:
            handle = queue.submit(program, options, executor="vectorized")
            artifact = handle.future().result(timeout=120)
        assert artifact.field_digests == handle.result().field_digests

    def test_future_of_an_already_terminal_job_resolves_immediately(self):
        program, options = _config()
        with _queue() as queue:
            handle = queue.submit(program, options, executor="vectorized")
            handle.wait(timeout=120)
            assert handle.future().result(timeout=5) is not None

    def test_cancel_a_queued_job(self):
        program, options = _config()
        with _queue(workers=0) as queue:
            handle = queue.submit(program, options, executor="vectorized")
            assert handle.cancel() is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                handle.result()
            assert queue.statistics.cancelled == 1

    def test_handle_survives_the_daemon(self):
        program, options = _config()
        with _queue() as queue:
            job_id = queue.submit(
                program, options, executor="vectorized"
            ).job_id
            queue.handle(job_id).wait(timeout=120)
        # A fresh daemon (fresh process in real life) resolves the same job.
        with _queue(workers=0) as fresh:
            handle = fresh.handle(job_id)
            assert handle.status() is JobStatus.DONE
            assert handle.result().field_digests

    def test_unknown_job_id_raises(self):
        with _queue(workers=0) as queue:
            with pytest.raises(UnknownJobError, match="unknown job id 424242"):
                queue.handle(424242)


class TestEventsAndDrain:
    def test_subscribers_stream_the_full_lifecycle_inline(self):
        program, options = _config()
        seen = []
        with _queue(workers=1) as queue:
            queue.subscribe(seen.append)
            handle = queue.submit(program, options, executor="vectorized")
            handle.wait(timeout=120)
            queue.drain(timeout=120)
        # Sort by store order: the submitting thread and the worker thread
        # dispatch their own committed events, so arrival order can race.
        transitions = [
            event.to_status
            for event in sorted(seen, key=lambda event: event.event_id)
            if event.job_id == handle.job_id
        ]
        assert transitions == [
            JobStatus.QUEUED,
            JobStatus.COMPILING,
            JobStatus.RUNNING,
            JobStatus.DIGESTING,
            JobStatus.DONE,
        ]

    def test_drain_without_workers_raises_instead_of_hanging(self):
        program, options = _config()
        with _queue(workers=0) as queue:
            queue.submit(program, options, executor="vectorized")
            with pytest.raises(RuntimeError, match="no running workers"):
                queue.drain(timeout=5)

    def test_statistics_summary_formats(self):
        program, options = _config()
        with _queue() as queue:
            queue.submit(program, options, executor="vectorized").wait(
                timeout=120
            )
        # After close() the worker threads have joined, so the in-memory
        # terminal counters are settled (wait() alone races them).
        text = queue.format_statistics()
        assert "submitted 1" in text
        assert "completed 1" in text
        assert "done 1" in text
