"""The persistent SQLite job store: atomic transitions, dedup, recovery."""

import threading

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.queue.lifecycle import (
    IllegalTransitionError,
    JobStatus,
    UnknownJobError,
)
from repro.service.queue.store import JobPayload, JobStore
from repro.transforms.pipeline import PipelineOptions


def _payload(seed=13):
    program = benchmark_by_name("Jacobian").program(
        nx=3, ny=3, nz=8, time_steps=1
    )
    return JobPayload(
        program=program,
        options=PipelineOptions(grid_width=3, grid_height=3),
        executor="vectorized",
        seed=seed,
        max_rounds=1_000_000,
    ).encode()


def _submit(store, fingerprint="fp-1", **kwargs):
    record, deduplicated = store.submit(
        _payload(),
        fingerprint=fingerprint,
        program_name="jacobian",
        executor="vectorized",
        **kwargs,
    )
    return record, deduplicated


class TestSubmission:
    def test_submit_creates_a_queued_job_with_a_submitted_event(self):
        store = JobStore()
        record, deduplicated = _submit(store)
        assert not deduplicated
        assert record.status is JobStatus.QUEUED
        assert record.attempts == 0
        events = store.events(record.id)
        assert len(events) == 1
        assert events[0].from_status is None
        assert events[0].to_status is JobStatus.QUEUED

    def test_in_flight_fingerprints_deduplicate(self):
        store = JobStore()
        first, _ = _submit(store)
        second, deduplicated = _submit(store)
        assert deduplicated and second.id == first.id
        # A *different* fingerprint is a new job.
        third, deduplicated = _submit(store, fingerprint="fp-2")
        assert not deduplicated and third.id != first.id

    def test_terminal_jobs_do_not_absorb_resubmissions(self):
        store = JobStore()
        first, _ = _submit(store)
        claimed = store.claim_next("w")
        store.fail(claimed.id, "boom", worker="w")
        second, deduplicated = _submit(store)
        assert not deduplicated and second.id != first.id

    def test_dedupe_can_be_disabled(self):
        store = JobStore()
        first, _ = _submit(store)
        second, deduplicated = _submit(store, dedupe=False)
        assert not deduplicated and second.id != first.id

    def test_payload_round_trips_through_the_row(self):
        store = JobStore()
        record, _ = _submit(store)
        payload = JobPayload.decode(store.get(record.id).payload)
        assert payload.executor == "vectorized"
        assert payload.seed == 13
        assert payload.program.name == "jacobian"

    def test_insert_completed_records_the_full_lifecycle(self):
        store = JobStore()
        record = store.insert_completed(
            _payload(),
            fingerprint="fp-1",
            program_name="jacobian",
            executor="vectorized",
            experiment="exp",
            result={"served_from": "run-cache"},
            detail="resumed from run cache",
        )
        assert record.status is JobStatus.DONE
        assert record.served_from == "run-cache"
        transitions = [
            (event.from_status, event.to_status)
            for event in store.events(record.id)
        ]
        assert transitions == [
            (None, JobStatus.QUEUED),
            (JobStatus.QUEUED, JobStatus.COMPILING),
            (JobStatus.COMPILING, JobStatus.RUNNING),
            (JobStatus.RUNNING, JobStatus.DIGESTING),
            (JobStatus.DIGESTING, JobStatus.DONE),
        ]


class TestClaimsAndTransitions:
    def test_claim_is_the_queued_to_compiling_edge_and_counts_an_attempt(self):
        store = JobStore()
        record, _ = _submit(store)
        claimed = store.claim_next("worker-0")
        assert claimed.id == record.id
        assert claimed.status is JobStatus.COMPILING
        assert claimed.attempts == 1
        assert claimed.worker == "worker-0"
        assert store.claim_next("worker-1") is None  # nothing left

    def test_claims_are_fifo(self):
        store = JobStore()
        first, _ = _submit(store, fingerprint="fp-1")
        second, _ = _submit(store, fingerprint="fp-2")
        assert store.claim_next("w").id == first.id
        assert store.claim_next("w").id == second.id

    def test_backoff_hides_a_job_until_not_before(self):
        store = JobStore()
        record, _ = _submit(store)
        claimed = store.claim_next("w")
        assert store.requeue_or_fail(claimed.id, "died", backoff=60.0) is (
            JobStatus.QUEUED
        )
        assert store.claim_next("w") is None  # invisible for 60 s

    def test_illegal_transition_is_rejected_atomically(self):
        store = JobStore()
        record, _ = _submit(store)
        with pytest.raises(IllegalTransitionError):
            store.transition(record.id, JobStatus.DONE)
        assert store.get(record.id).status is JobStatus.QUEUED

    def test_expected_state_pins_the_transition(self):
        store = JobStore()
        record, _ = _submit(store)
        store.claim_next("w")
        with pytest.raises(IllegalTransitionError, match="expected"):
            store.transition(
                record.id, JobStatus.DIGESTING, expected=JobStatus.RUNNING
            )

    def test_unknown_job_raises(self):
        store = JobStore()
        with pytest.raises(UnknownJobError, match="unknown job id 99"):
            store.transition(99, JobStatus.COMPILING)
        assert store.get(99) is None

    def test_concurrent_claims_never_double_claim(self):
        store = JobStore()
        for index in range(4):
            _submit(store, fingerprint=f"fp-{index}")
        claimed, lock = [], threading.Lock()

        def worker(name):
            while True:
                record = store.claim_next(name)
                if record is None:
                    return
                with lock:
                    claimed.append(record.id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(set(claimed))  # each job once
        assert len(claimed) == 4


class TestRetryAndRecovery:
    def test_requeue_or_fail_exhausts_the_attempt_budget(self):
        store = JobStore()
        record, _ = _submit(store, max_attempts=2)
        store.claim_next("w")
        assert store.requeue_or_fail(record.id, "died") is JobStatus.QUEUED
        store.claim_next("w")
        assert store.requeue_or_fail(record.id, "died") is JobStatus.FAILED
        final = store.get(record.id)
        assert final.status is JobStatus.FAILED
        assert "attempts exhausted: 2/2" in final.error

    def test_requeue_releases_worker_ownership(self):
        store = JobStore()
        record, _ = _submit(store)
        store.claim_next("w")
        store.requeue_or_fail(record.id, "died")
        assert store.get(record.id).worker is None

    def test_terminal_and_queued_jobs_pass_through_untouched(self):
        store = JobStore()
        record, _ = _submit(store)
        assert store.requeue_or_fail(record.id, "died") is JobStatus.QUEUED
        claimed = store.claim_next("w")
        store.fail(claimed.id, "boom")
        assert store.requeue_or_fail(record.id, "died") is JobStatus.FAILED
        assert len(store.events(record.id)) == 3  # no extra events recorded

    def test_recover_orphans_requeues_every_active_job(self):
        store = JobStore()
        first, _ = _submit(store, fingerprint="fp-1")
        second, _ = _submit(store, fingerprint="fp-2")
        store.claim_next("w")
        store.claim_next("w")
        store.transition(
            second.id, JobStatus.RUNNING, expected=JobStatus.COMPILING
        )
        # A fresh store (the restarted daemon) sees both as orphans.
        recovered = JobStore().recover_orphans()
        assert dict(recovered) == {
            first.id: JobStatus.QUEUED,
            second.id: JobStatus.QUEUED,
        }
        detail = JobStore().events(first.id)[-1].detail
        assert "orphaned (daemon restart)" in detail


class TestEventsAndReporting:
    def test_events_fire_after_commit_on_the_recording_instance(self):
        seen = []
        store = JobStore(on_event=seen.append)
        record, _ = _submit(store)
        store.claim_next("w")
        assert [event.to_status for event in seen] == [
            JobStatus.QUEUED,
            JobStatus.COMPILING,
        ]

    def test_rolled_back_transitions_fire_no_events(self):
        seen = []
        store = JobStore(on_event=seen.append)
        record, _ = _submit(store)
        seen.clear()
        with pytest.raises(IllegalTransitionError):
            store.transition(record.id, JobStatus.DONE)
        assert seen == []

    def test_events_since_returns_only_newer_events(self):
        store = JobStore()
        record, _ = _submit(store)
        watermark = store.latest_event_id(record.id)
        store.claim_next("w")
        newer = store.events_since(record.id, watermark)
        assert [event.to_status for event in newer] == [JobStatus.COMPILING]

    def test_counts_and_stats_aggregate_the_store(self):
        store = JobStore()
        _submit(store, fingerprint="fp-1")
        record, _ = _submit(store, fingerprint="fp-2")
        claimed = store.claim_next("w")
        store.fail(claimed.id, "boom")
        counts = store.counts()
        assert counts[JobStatus.QUEUED] == 1
        assert counts[JobStatus.FAILED] == 1
        stats = store.stats()
        assert stats.jobs == 2
        assert stats.events == 4
        assert stats.total_bytes > 0

    def test_purge_empties_jobs_and_events(self):
        store = JobStore()
        _submit(store)
        assert store.purge() == 1
        assert store.counts()[JobStatus.QUEUED] == 0
        assert store.stats().events == 0

    def test_schema_version_mismatch_is_a_hard_error(self):
        store = JobStore()
        with store._txn() as connection:
            connection.execute(
                "UPDATE queue_meta SET value = '0' WHERE key = 'schema_version'"
            )
        with pytest.raises(ValueError, match="schema version 0"):
            JobStore()
