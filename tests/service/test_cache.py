"""The two cache tiers: LRU behaviour, disk roundtrips, overrides, purge."""

import os

from repro.service.cache import (
    ArtifactCache,
    CompiledArtifact,
    DiskArtifactCache,
    InMemoryArtifactCache,
    REPRO_CACHE_DIR_ENV,
    resolve_cache_directory,
)


def make_artifact(tag: str) -> CompiledArtifact:
    return CompiledArtifact(
        fingerprint=f"{tag:0>64}",
        program_name=f"program_{tag}",
        target="wse2",
        grid_width=4,
        grid_height=4,
        csl_sources={
            f"{tag}.csl": f"// program {tag}\n",
            f"{tag}_layout.csl": f"// layout {tag}\n",
        },
        statistics={"total_wall_time": 0.01, "total_rewrites": 3, "passes": []},
    )


# --------------------------------------------------------------------------- #
# Memory tier
# --------------------------------------------------------------------------- #


def test_memory_tier_is_lru():
    cache = InMemoryArtifactCache(capacity=2)
    a, b, c = make_artifact("a"), make_artifact("b"), make_artifact("c")
    cache.put(a)
    cache.put(b)
    assert cache.get(a.fingerprint) is a  # refresh a, making b the LRU entry
    cache.put(c)
    assert cache.evictions == 1
    assert cache.get(b.fingerprint) is None
    assert cache.get(a.fingerprint) is a
    assert cache.get(c.fingerprint) is c


# --------------------------------------------------------------------------- #
# Disk tier
# --------------------------------------------------------------------------- #


def test_disk_roundtrip_preserves_every_byte(tmp_path):
    store = DiskArtifactCache(tmp_path / "store")
    artifact = make_artifact("roundtrip")
    store.put(artifact)
    loaded = store.get(artifact.fingerprint)
    assert loaded == artifact
    assert loaded.csl_sources == artifact.csl_sources
    assert len(store) == 1
    assert store.total_bytes() > 0


def test_env_override_selects_the_store_location(tmp_path, monkeypatch):
    override = tmp_path / "override-store"
    monkeypatch.setenv(REPRO_CACHE_DIR_ENV, str(override))
    assert resolve_cache_directory() == override
    store = DiskArtifactCache()
    store.put(make_artifact("env"))
    assert override.is_dir() and len(list(override.glob("*.json"))) == 1
    # An explicit directory wins over the environment.
    explicit = tmp_path / "explicit"
    assert DiskArtifactCache(explicit).directory == explicit


def test_corrupt_or_stale_files_read_as_misses(tmp_path):
    store = DiskArtifactCache(tmp_path / "store")
    artifact = make_artifact("corrupt")
    store.put(artifact)
    path = store._path(artifact.fingerprint)
    path.write_text("{not json", encoding="utf-8")
    assert store.get(artifact.fingerprint) is None
    # Unknown schema versions are also ignored rather than crashing.
    store.put(artifact)
    text = path.read_text(encoding="utf-8").replace(
        '"schema_version": 1', '"schema_version": 999'
    )
    path.write_text(text, encoding="utf-8")
    assert store.get(artifact.fingerprint) is None


def test_purge_empties_the_store(tmp_path):
    store = DiskArtifactCache(tmp_path / "store")
    for tag in ("p1", "p2", "p3"):
        store.put(make_artifact(tag))
    assert store.purge() == 3
    assert len(store) == 0
    assert store.purge() == 0  # idempotent, including on a missing directory


def test_writes_leave_no_temp_files_behind(tmp_path):
    store = DiskArtifactCache(tmp_path / "store")
    store.put(make_artifact("tmpcheck"))
    leftovers = [name for name in os.listdir(store.directory) if name.endswith(".tmp")]
    assert leftovers == []


# --------------------------------------------------------------------------- #
# Tiered facade
# --------------------------------------------------------------------------- #


def test_tiered_lookup_promotes_disk_hits_to_memory(tmp_path):
    directory = tmp_path / "store"
    warm = ArtifactCache(directory)
    artifact = make_artifact("tiered")
    warm.put(artifact)

    # A fresh facade over the same directory has a cold memory tier.
    cold = ArtifactCache(directory)
    assert cold.get(artifact.fingerprint) == artifact
    assert cold.statistics.disk_hits == 1
    assert cold.get(artifact.fingerprint) == artifact
    assert cold.statistics.memory_hits == 1
    assert cold.statistics.misses == 0


def test_tiered_counters_track_misses_and_stores(tmp_path):
    cache = ArtifactCache(tmp_path / "store", memory_capacity=1)
    assert cache.get("0" * 64) is None
    assert cache.statistics.misses == 1
    cache.put(make_artifact("s1"))
    cache.put(make_artifact("s2"))  # evicts s1 from the memory tier
    assert cache.statistics.stores == 2
    assert cache.statistics.evictions == 1
    assert cache.statistics.hit_rate == 0.0
