"""Compile determinism across processes — the property the whole
content-addressed cache rests on: fingerprints and printed CSL must be
byte-identical whether produced in this process, in a pool worker, or served
back from the on-disk store."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.service.cache import DiskArtifactCache
from repro.service.fingerprint import compute_fingerprint
from repro.service.service import CompileJob, CompileService, build_artifact, run_compile_job
from repro.transforms.pipeline import compile_stencil_program
from tests.service.test_fingerprint import make_options, make_program


def _fingerprint_in_worker(_=None) -> str:
    """Module-level so the pool can pickle it by reference."""
    return compute_fingerprint(make_program(), make_options())


def _pool() -> ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("fork start method unavailable")
    return ProcessPoolExecutor(max_workers=1, mp_context=context)


def test_fingerprint_is_identical_in_process_and_in_a_pool_worker():
    local = compute_fingerprint(make_program(), make_options())
    with _pool() as pool:
        remote = pool.submit(_fingerprint_in_worker).result()
    assert remote == local


def test_csl_text_is_byte_identical_in_process_and_in_a_pool_worker(tmp_path):
    program, options = make_program(), make_options()
    fingerprint = compute_fingerprint(program, options)
    local = build_artifact(compile_stencil_program(program, options), fingerprint)

    job = CompileJob(
        program=program,
        options=options,
        fingerprint=fingerprint,
        cache_dir=str(tmp_path / "worker-store"),
    )
    with _pool() as pool:
        remote = pool.submit(run_compile_job, job).result()

    assert remote.csl_sources == local.csl_sources
    assert remote.fingerprint == local.fingerprint
    # The worker also published the identical artifact to its store.
    stored = DiskArtifactCache(tmp_path / "worker-store").get(fingerprint)
    assert stored is not None
    assert stored.csl_sources == local.csl_sources


def test_cached_artifact_is_byte_identical_to_a_fresh_compile():
    with CompileService() as service:
        cached = service.compile(make_program(), make_options())
    fresh = build_artifact(
        compile_stencil_program(make_program(), make_options()),
        cached.fingerprint,
    )
    assert cached.csl_sources == fresh.csl_sources

    # And the JSON roundtrip through the disk tier loses nothing either.
    from_disk = service.cache.disk.get(cached.fingerprint)
    assert from_disk is not None
    assert from_disk.csl_sources == fresh.csl_sources


def test_repeated_in_process_compiles_are_byte_identical():
    first = build_artifact(compile_stencil_program(make_program(), make_options()))
    second = build_artifact(compile_stencil_program(make_program(), make_options()))
    assert first.csl_sources == second.csl_sources
