"""Fingerprint stability and sensitivity."""

import pytest

import repro.transforms.pipeline as pipeline_module
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.service.fingerprint import (
    canonical_json,
    compute_fingerprint,
    fingerprint_payload,
)
from repro.transforms.pipeline import PipelineOptions


def make_program(coefficient: float = 0.25) -> StencilProgram:
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (u(0, 0, 0) + u(1, 0, 0) + u(-1, 0, 0) + u(0, 1, 0)) * Constant(
        coefficient
    )
    return StencilProgram(
        name="fp_probe",
        fields=[FieldDecl("u", (4, 4, 8)), FieldDecl("v", (4, 4, 8))],
        equations=[StencilEquation("v", expression)],
        time_steps=2,
    )


def make_options(**overrides) -> PipelineOptions:
    settings = dict(grid_width=4, grid_height=4, num_chunks=2)
    settings.update(overrides)
    return PipelineOptions(**settings)


def test_identical_inputs_share_a_fingerprint():
    # Two independently constructed but structurally identical inputs.
    first = compute_fingerprint(make_program(), make_options())
    second = compute_fingerprint(make_program(), make_options())
    assert first == second
    assert len(first) == 64  # sha256 hex


def test_program_changes_change_the_fingerprint():
    base = compute_fingerprint(make_program(), make_options())
    assert compute_fingerprint(make_program(coefficient=0.5), make_options()) != base

    renamed = make_program()
    renamed.name = "other_name"
    assert compute_fingerprint(renamed, make_options()) != base

    more_steps = make_program()
    more_steps.time_steps = 7
    assert compute_fingerprint(more_steps, make_options()) != base


@pytest.mark.parametrize(
    "overrides",
    [
        {"grid_width": 5},
        {"grid_height": 5},
        {"num_chunks": 3},
        {"target": "wse3"},
        {"enable_stencil_inlining": False},
        {"enable_varith_fusion": False},
        {"enable_fmac_fusion": False},
        {"enable_memory_optimization": False},
    ],
)
def test_every_artifact_relevant_option_is_fingerprinted(overrides):
    base = compute_fingerprint(make_program(), make_options())
    changed = compute_fingerprint(make_program(), make_options(**overrides))
    assert changed != base


def test_verify_each_does_not_change_the_fingerprint():
    # verify_each cannot change the emitted CSL, so both settings share the
    # cached artifact.
    relaxed = compute_fingerprint(make_program(), make_options(verify_each=False))
    strict = compute_fingerprint(make_program(), make_options(verify_each=True))
    assert relaxed == strict


def test_pipeline_version_bump_invalidates_fingerprints(monkeypatch):
    base = compute_fingerprint(make_program(), make_options())
    monkeypatch.setattr(
        pipeline_module, "PIPELINE_VERSION", pipeline_module.PIPELINE_VERSION + 1
    )
    assert compute_fingerprint(make_program(), make_options()) != base


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json({"a": [2, 3], "b": 1})


def test_payload_carries_program_options_and_pipeline_stamp():
    payload = fingerprint_payload(make_program(), make_options())
    assert set(payload) == {"program", "options", "pipeline"}
    assert payload["program"]["name"] == "fp_probe"
    assert payload["options"]["target"] == "wse2"
    assert "verify_each" not in payload["options"]
    # The stamp names the exact pass sequence the options select.
    assert "stencil-inlining" in payload["pipeline"]["passes"]
    no_inline = fingerprint_payload(
        make_program(), make_options(enable_stencil_inlining=False)
    )
    assert "stencil-inlining" not in no_inline["pipeline"]["passes"]


class TestBoundaryFingerprinting:
    """The fingerprint changes when (and only when) the boundary changes."""

    def test_program_boundary_changes_the_fingerprint(self):
        from dataclasses import replace

        from repro.frontends.common import BoundaryCondition

        base = compute_fingerprint(make_program(), make_options())
        fingerprints = {base}
        for boundary in (
            BoundaryCondition.periodic(),
            BoundaryCondition.reflect(),
            BoundaryCondition.dirichlet(1.5),
        ):
            program = replace(make_program(), boundary=boundary)
            fingerprints.add(compute_fingerprint(program, make_options()))
        assert len(fingerprints) == 4

    def test_options_boundary_override_changes_the_fingerprint(self):
        base = compute_fingerprint(make_program(), make_options())
        overridden = compute_fingerprint(
            make_program(), make_options(boundary="periodic")
        )
        assert overridden != base

    def test_unchanged_boundary_keeps_the_fingerprint(self):
        from dataclasses import replace

        from repro.frontends.common import BoundaryCondition

        first = compute_fingerprint(
            replace(make_program(), boundary=BoundaryCondition.periodic()),
            make_options(),
        )
        second = compute_fingerprint(
            replace(make_program(), boundary=BoundaryCondition.periodic()),
            make_options(),
        )
        assert first == second

    def test_payload_carries_the_effective_boundary_once(self):
        payload = fingerprint_payload(
            make_program(), make_options(boundary="reflect")
        )
        # The override is the effective boundary; it is hashed in the
        # program slot and the options slot is normalised away.
        assert payload["program"]["boundary"] == ["boundary", "reflect", 0.0]
        assert payload["options"]["boundary"] is None

    def test_declared_and_overridden_boundary_share_a_fingerprint(self):
        """A program declaring periodic and an identical one overridden to
        periodic compile byte-identical artifacts — one cache entry."""
        from dataclasses import replace

        from repro.frontends.common import BoundaryCondition

        declared = compute_fingerprint(
            replace(make_program(), boundary=BoundaryCondition.periodic()),
            make_options(),
        )
        overridden = compute_fingerprint(
            make_program(), make_options(boundary="periodic")
        )
        assert declared == overridden

    def test_explicit_override_equal_to_program_boundary_is_normalised(self):
        """'--boundary dirichlet' on a Dirichlet program compiles the same
        artifact, so it must warm-hit the same cache entry."""
        inherited = compute_fingerprint(make_program(), make_options())
        explicit = compute_fingerprint(
            make_program(), make_options(boundary="dirichlet")
        )
        assert explicit == inherited
