"""End-to-end run jobs: fingerprints, caching, cross-backend digests, CLI.

The run service fronts both stages — compilation (through the compile-stage
fingerprint cache) and simulation (through the run-artifact cache) — so the
tests pin the fingerprint's sensitivity to every run-level input, the
cold/warm behaviour of both tiers, and the strongest end-to-end property
the executors offer: every backend produces the *same* field digests for
the same run fingerprint inputs.
"""

import io

import pytest

from repro.benchmarks import benchmark_by_name
from repro.service.cli import main as cli_main
from repro.service.fingerprint import canonical_json, compute_fingerprint
from repro.service.run import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_RUN_SEED,
    RunArtifact,
    RunService,
    compute_run_fingerprint,
    run_fingerprint_payload,
)
from repro.transforms.pipeline import PipelineOptions
from repro.wse.codegen import CODEGEN_VERSION
from repro.wse.plan import PLAN_VERSION


def _config(grid=3, nz=8, steps=1):
    benchmark = benchmark_by_name("Jacobian")
    program = benchmark.program(nx=grid, ny=grid, nz=nz, time_steps=steps)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
    return program, options


class TestRunFingerprints:
    def test_payload_extends_the_compile_payload(self):
        program, options = _config()
        payload = run_fingerprint_payload(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )
        assert payload["run"] == {
            "schema": 2,
            "executor": "vectorized",
            "seed": 13,
            "max_rounds": DEFAULT_MAX_ROUNDS,
            "plan_version": PLAN_VERSION,
            "codegen_version": CODEGEN_VERSION,
        }
        assert "program" in payload and "options" in payload

    def test_every_run_input_is_fingerprint_sensitive(self):
        program, options = _config()
        base = compute_run_fingerprint(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )
        assert base != compute_run_fingerprint(
            program, options, "tiled", 13, DEFAULT_MAX_ROUNDS
        ), "executor must change the run fingerprint"
        assert base != compute_run_fingerprint(
            program, options, "vectorized", 14, DEFAULT_MAX_ROUNDS
        ), "seed must change the run fingerprint"
        assert base != compute_run_fingerprint(
            program, options, "vectorized", 13, 10
        ), "round budget must change the run fingerprint"

    def test_compile_inputs_stay_fingerprint_sensitive(self):
        program, options = _config()
        other_program, _ = _config(steps=2)
        base = compute_run_fingerprint(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )
        assert base != compute_run_fingerprint(
            other_program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )

    def test_run_fingerprint_differs_from_compile_fingerprint(self):
        program, options = _config()
        assert compute_run_fingerprint(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        ) != compute_fingerprint(program, options)

    @pytest.mark.parametrize("version", ("PLAN_VERSION", "CODEGEN_VERSION"))
    def test_semantics_version_bumps_invalidate_run_fingerprints(
        self, monkeypatch, version
    ):
        """A planning- or codegen-semantics change (signalled by its
        version constant) must re-run every cached simulation exactly
        once — the fingerprint has to move."""
        import repro.service.run as run_module

        program, options = _config()
        base = compute_run_fingerprint(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )
        monkeypatch.setattr(
            run_module, version, getattr(run_module, version) + 1
        )
        assert base != compute_run_fingerprint(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        ), f"{version} bump must change the run fingerprint"

    def test_fingerprint_is_insensitive_to_payload_dict_ordering(self):
        """The hash covers canonical JSON, not dict construction order:
        reversing every mapping in the payload must not move it."""

        def reordered(value):
            if isinstance(value, dict):
                return {
                    key: reordered(value[key]) for key in reversed(list(value))
                }
            if isinstance(value, list):
                return [reordered(item) for item in value]
            return value

        program, options = _config()
        payload = run_fingerprint_payload(
            program, options, "vectorized", 13, DEFAULT_MAX_ROUNDS
        )
        shuffled = reordered(payload)
        assert list(shuffled) == list(reversed(list(payload)))  # really moved
        assert canonical_json(shuffled) == canonical_json(payload)


class TestRunService:
    def test_cold_run_simulates_then_warm_run_hits_the_cache(self):
        program, options = _config()
        with RunService() as service:
            cold = service.run(program, options, executor="vectorized")
            assert service.statistics.simulations == 1
            assert service.statistics.cache_hits == 0
            warm = service.run(program, options, executor="vectorized")
            assert service.statistics.simulations == 1  # never re-simulated
            assert service.statistics.cache_hits == 1
        assert warm == cold
        assert cold.rounds > 0
        assert cold.field_digests  # one digest per program field
        assert set(cold.field_digests) == {
            decl.name for decl in program.fields
        }
        assert cold.statistics["rounds"] == cold.rounds

    def test_warm_disk_store_survives_a_service_restart(self):
        program, options = _config()
        with RunService() as first:
            cold = first.run(program, options, executor="vectorized")
        with RunService() as second:
            warm = second.run(program, options, executor="vectorized")
            assert second.statistics.simulations == 0
            assert second.statistics.cache_hits == 1
        assert warm == cold

    def test_all_backends_agree_on_field_digests(self):
        """The end-to-end cross-check: four executors, one answer."""
        program, options = _config(grid=4)
        digests = {}
        with RunService() as service:
            for executor in ("reference", "vectorized", "tiled", "compiled"):
                artifact = service.run(program, options, executor=executor)
                digests[executor] = artifact.field_digests
            # Four distinct fingerprints (executor is a run input) ...
            assert service.statistics.simulations == 4
        # ... but identical simulated bytes.
        assert (
            digests["reference"]
            == digests["vectorized"]
            == digests["tiled"]
            == digests["compiled"]
        )

    def test_compile_stage_is_shared_across_run_inputs(self):
        """Runs differing only in run-level inputs compile exactly once."""
        program, options = _config()
        with RunService() as service:
            service.run(program, options, executor="vectorized", seed=1)
            service.run(program, options, executor="vectorized", seed=2)
            assert service.statistics.simulations == 2
            compiler = service.compiler.statistics
            assert compiler.ir_compiles == 1
            assert compiler.ir_hits == 1

    def test_unknown_executor_raises_before_any_work(self):
        program, options = _config()
        with RunService() as service:
            with pytest.raises(KeyError, match="unknown executor 'warp'"):
                service.submit(program, options, executor="warp")
            assert service.statistics.submitted == 0

    def test_batch_returns_futures_in_order(self):
        jacobian = _config()
        uvkbe_program = benchmark_by_name("UVKBE").program(
            nx=3, ny=3, nz=8, time_steps=1
        )
        uvkbe = (uvkbe_program, PipelineOptions(grid_width=3, grid_height=3))
        with RunService() as service:
            futures = service.submit_batch([jacobian, uvkbe])
            artifacts = [future.result() for future in futures]
        assert [a.program_name for a in artifacts] == ["jacobian", "uvkbe"]

    def test_batch_deduplicates_identical_fingerprints(self):
        """A sweep with repeated configs executes each distinct run once;
        the repeats share the winner's future."""
        jacobian = _config()
        with RunService() as service:
            futures = service.submit_batch([jacobian, jacobian, jacobian])
            artifacts = [future.result() for future in futures]
            assert service.statistics.simulations == 1
            assert service.statistics.deduplicated == 2
            assert futures[1] is futures[0] and futures[2] is futures[0]
        assert artifacts[0] == artifacts[1] == artifacts[2]

    def test_batch_dedup_distinguishes_run_level_inputs(self):
        jacobian = _config()
        with RunService() as service:
            futures = service.submit_batch(
                [jacobian, jacobian], seed=DEFAULT_RUN_SEED
            )
            assert service.statistics.deduplicated == 1
            more = service.submit_batch([jacobian], seed=99)
            assert more[0] is not futures[0]  # different fingerprint
            assert service.statistics.simulations == 2

    def test_stage_callback_fires_in_order_on_a_miss_only(self):
        program, options = _config()
        stages = []
        with RunService() as service:
            service.run(program, options, on_stage=stages.append)
            assert stages == ["compiling", "running", "digesting"]
            stages.clear()
            service.run(program, options, on_stage=stages.append)
            assert stages == []  # cache hits never enter the stages

    def test_artifact_json_round_trip(self):
        program, options = _config()
        with RunService() as service:
            artifact = service.run(program, options)
        assert RunArtifact.from_json(artifact.to_json()) == artifact

    def test_from_json_rejects_a_missing_schema_version(self):
        with pytest.raises(ValueError, match="no schema_version"):
            RunArtifact.from_json('{"fingerprint": "abc"}')

    def test_from_json_rejects_a_mismatched_schema_version(self):
        with pytest.raises(ValueError, match="does not match current"):
            RunArtifact.from_json('{"schema_version": 1}')

    def test_from_json_rejects_unknown_fields(self):
        program, options = _config()
        with RunService() as service:
            artifact = service.run(program, options)
        import json as json_module

        data = json_module.loads(artifact.to_json())
        data["surprise"] = 1
        with pytest.raises(ValueError, match=r"unknown fields \['surprise'\]"):
            RunArtifact.from_json(json_module.dumps(data))

    def test_from_json_rejects_missing_fields(self):
        program, options = _config()
        with RunService() as service:
            artifact = service.run(program, options)
        import json as json_module

        data = json_module.loads(artifact.to_json())
        del data["field_digests"]
        with pytest.raises(
            ValueError, match=r"missing fields \['field_digests'\]"
        ):
            RunArtifact.from_json(json_module.dumps(data))

    def test_from_json_rejects_non_object_documents(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            RunArtifact.from_json("[1, 2, 3]")

    def test_stale_schema_on_disk_is_a_miss(self):
        program, options = _config()
        with RunService() as service:
            artifact = service.run(program, options)
            path = service.store._path(artifact.fingerprint)
            path.write_text(
                artifact.to_json().replace(
                    f'"schema_version": {artifact.schema_version}',
                    '"schema_version": 0',
                ),
                encoding="utf-8",
            )
        with RunService() as fresh:
            fresh.run(program, options)
            assert fresh.statistics.simulations == 1  # recomputed, not served


class TestRunCli:
    def test_run_subcommand_cold_then_warm(self):
        out = io.StringIO()
        code = cli_main(
            [
                "run",
                "Jacobian",
                "--grid",
                "3x3",
                "--nz",
                "8",
                "--time-steps",
                "1",
                "--repeat",
                "2",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "round 1/2" in text and "(0 served from run cache)" in text
        assert "round 2/2" in text and "(1 served from run cache)" in text
        assert "run service statistics:" in text

    def test_run_subcommand_rejects_unknown_executor(self, capsys):
        code = cli_main(
            ["run", "Jacobian", "--executor", "warp"], out=io.StringIO()
        )
        assert code == 2
        assert "unknown executor 'warp'" in capsys.readouterr().err

    def test_run_subcommand_rejects_unknown_benchmark(self, capsys):
        code = cli_main(["run", "NotABench"], out=io.StringIO())
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_stats_and_purge_cover_the_run_store(self):
        out = io.StringIO()
        cli_main(
            ["run", "Jacobian", "--grid", "3x3", "--nz", "8", "--time-steps", "1"],
            out=out,
        )
        out = io.StringIO()
        assert cli_main(["stats"], out=out) == 0
        assert "run store:" in out.getvalue()
        out = io.StringIO()
        assert cli_main(["purge"], out=out) == 0
        assert "purged 1 run artifacts" in out.getvalue()
