"""CompileService behaviour: hits, batches, pools, IR memoisation, CLI."""

import io
import threading

from repro.service.cli import main
from repro.service.service import CompileService, default_service
from tests.service.test_fingerprint import make_options, make_program


def test_inline_submit_compiles_once_then_serves_from_cache():
    with CompileService() as service:
        first = service.submit(make_program(), make_options()).result()
        second = service.submit(make_program(), make_options()).result()
    assert first.csl_sources == second.csl_sources
    assert service.statistics.inline_compiles == 1
    assert service.statistics.cache_hits == 1
    assert service.cache.statistics.memory_hits == 1
    # Both program and layout modules were printed into the artifact.
    assert any(name.endswith("_layout.csl") for name in first.csl_sources)


def test_artifact_metadata_describes_the_configuration():
    with CompileService() as service:
        artifact = service.compile(make_program(), make_options(target="wse3"))
    assert artifact.program_name == "fp_probe"
    assert artifact.target == "wse3"
    assert (artifact.grid_width, artifact.grid_height) == (4, 4)
    assert artifact.statistics["passes"], "per-pass statistics must be recorded"
    assert artifact.statistics["total_wall_time"] > 0


def test_disk_store_is_shared_across_service_instances():
    with CompileService() as producer:
        produced = producer.compile(make_program(), make_options())
    with CompileService() as consumer:
        served = consumer.compile(make_program(), make_options())
    assert served == produced
    assert consumer.statistics.inline_compiles == 0
    assert consumer.cache.statistics.disk_hits == 1


def test_batch_over_a_process_pool_accounts_every_submission():
    # Three distinct configurations plus one duplicate: the duplicate either
    # joins the in-flight compile or hits the cache, never compiles twice.
    configs = [
        (make_program(), make_options()),
        (make_program(0.5), make_options()),
        (make_program(), make_options(target="wse3")),
        (make_program(), make_options()),
    ]
    with CompileService(max_workers=2) as service:
        futures = service.submit_batch(configs)
        artifacts = [future.result() for future in futures]
    assert len({a.fingerprint for a in artifacts}) == 3
    assert artifacts[0] == artifacts[3]
    stats = service.statistics
    assert stats.submitted == 4
    assert stats.pool_compiles == 3
    assert stats.deduplicated + stats.cache_hits == 1
    # Workers published their artifacts into the shared store.
    assert len(service.cache.disk) == 3


def test_compile_ir_memoises_live_results():
    with CompileService() as service:
        first = service.compile_ir(make_program(), make_options())
        second = service.compile_ir(make_program(), make_options())
        assert second is first
        assert service.statistics.ir_compiles == 1
        assert service.statistics.ir_hits == 1
        # The printed artifact landed in the cache as a side effect, so a
        # text client is served without compiling.
        service.submit(make_program(), make_options()).result()
        assert service.statistics.inline_compiles == 0
        assert service.statistics.cache_hits == 1


def test_concurrent_submissions_share_one_compile():
    # Check-and-register is one critical section, so two racing threads for
    # the same fingerprint must end up with exactly one pipeline run.
    barrier = threading.Barrier(2)
    artifacts = []

    with CompileService() as service:

        def submit():
            barrier.wait()
            artifacts.append(service.submit(make_program(), make_options()).result())

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert artifacts[0] == artifacts[1]
    stats = service.statistics
    assert stats.inline_compiles == 1
    assert stats.deduplicated + stats.cache_hits == 1


def test_default_service_is_a_process_wide_singleton():
    assert default_service() is default_service()


def test_format_statistics_mentions_the_store():
    with CompileService() as service:
        service.compile(make_program(), make_options())
        text = service.format_statistics()
    assert "cache" in text and str(service.cache.disk.directory) in text


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def test_cli_compile_repeat_shows_warm_cache(capsys):
    out = io.StringIO()
    code = main(
        ["compile", "Jacobian", "UVKBE", "--grid", "3x3", "--repeat", "2"],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "(0 served from cache)" in text
    assert "(2 served from cache)" in text
    assert "compilation service statistics" in text


def test_cli_stats_and_purge_roundtrip(isolated_cache):
    compile_out = io.StringIO()
    assert main(["compile", "Jacobian", "--grid", "3x3"], out=compile_out) == 0

    stats_out = io.StringIO()
    assert main(["stats"], out=stats_out) == 0
    # The combined table: one row per store, compile first.
    table = stats_out.getvalue().splitlines()
    assert table[0].split() == [
        "store", "entries", "bytes", "hits", "misses", "hit", "rate"
    ]
    assert table[1].split()[:2] == ["compile", "1"]
    assert str(isolated_cache) in stats_out.getvalue()

    purge_out = io.StringIO()
    assert main(["purge"], out=purge_out) == 0
    assert "purged 1 artifacts" in purge_out.getvalue()

    empty_out = io.StringIO()
    assert main(["stats"], out=empty_out) == 0
    assert empty_out.getvalue().splitlines()[1].split()[:2] == ["compile", "0"]


def test_cli_rejects_unknown_benchmarks(capsys):
    assert main(["compile", "NoSuchBenchmark"], out=io.StringIO()) == 2


def test_cli_rejects_invalid_option_values(capsys):
    # Out-of-range values exit 2 with a message, not a traceback.
    assert main(["compile", "Jacobian", "--num-chunks", "0"], out=io.StringIO()) == 2
    assert main(["compile", "Jacobian", "--workers", "-1"], out=io.StringIO()) == 2
    assert "error:" in capsys.readouterr().err
