"""Golden-output equivalence: worklist driver vs the legacy restarting walker.

The worklist driver must not change what the compiler produces — only how
fast it produces it.  These tests run the *entire* lowering pipeline twice
per benchmark program, once per driver, and require the final csl-ir modules
to print identically.
"""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.ir.printer import print_module
from repro.ir.rewriting import use_restarting_driver
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program


def _compile(name: str) -> str:
    bench = benchmark_by_name(name)
    program = bench.program(nx=6, ny=6, nz=16, time_steps=2)
    result = compile_stencil_program(
        program, PipelineOptions(grid_width=6, grid_height=6, num_chunks=2)
    )
    return print_module(result.module)


@pytest.mark.parametrize("name", ["Jacobian", "Seismic", "UVKBE"])
def test_worklist_driver_matches_restarting_walker(name):
    with use_restarting_driver():
        golden = _compile(name)
    assert _compile(name) == golden
