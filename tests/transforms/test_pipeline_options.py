"""Validation tests for :class:`PipelineOptions`."""

import pytest

from repro.transforms.pipeline import PipelineOptions


class TestPipelineOptionsValidation:
    def test_defaults_are_valid(self):
        options = PipelineOptions()
        assert options.target == "wse2"

    @pytest.mark.parametrize("target", ["wse2", "wse3"])
    def test_valid_targets(self, target):
        assert PipelineOptions(target=target).target == target

    @pytest.mark.parametrize("target", ["wse1", "WSE2", "cpu", ""])
    def test_invalid_target_rejected(self, target):
        with pytest.raises(ValueError, match="invalid target"):
            PipelineOptions(target=target)

    @pytest.mark.parametrize("width,height", [(0, 1), (1, 0), (-3, 4), (2, -2)])
    def test_non_positive_grid_rejected(self, width, height):
        with pytest.raises(ValueError, match="grid dimensions must be positive"):
            PipelineOptions(grid_width=width, grid_height=height)

    @pytest.mark.parametrize("num_chunks", [0, -1])
    def test_invalid_num_chunks_rejected(self, num_chunks):
        with pytest.raises(ValueError, match="num_chunks"):
            PipelineOptions(num_chunks=num_chunks)
