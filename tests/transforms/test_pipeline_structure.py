"""End-to-end structural tests: the full pipeline produces well-formed csl-ir."""

import pytest

from repro.dialects import csl
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program


def jacobi_program(nx=4, ny=4, nz=8, steps=2) -> StencilProgram:
    """A 6-point 3-D Jacobi-like stencil, the paper's running example shape."""
    access = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        access(0, 0, 0)
        + access(1, 0, 0)
        + access(-1, 0, 0)
        + access(0, 1, 0)
        + access(0, -1, 0)
        + access(0, 0, 1)
        + access(0, 0, -1)
    ) * Constant(0.12345)
    return StencilProgram(
        name="jacobi",
        fields=[
            FieldDecl("u", (nx, ny, nz)),
            FieldDecl("v", (nx, ny, nz)),
        ],
        equations=[StencilEquation("v", expression)],
        time_steps=steps,
    )


@pytest.fixture(scope="module")
def compiled():
    program = jacobi_program()
    options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
    return compile_stencil_program(program, options)


class TestPipelineProducesCslIr:
    def test_two_csl_modules(self, compiled):
        kinds = {module.kind for module in compiled.csl_modules}
        assert kinds == {csl.ModuleKind.PROGRAM, csl.ModuleKind.LAYOUT}

    def test_module_verifies(self, compiled):
        compiled.module.verify()

    def test_layout_has_rectangle_and_tile_code(self, compiled):
        layout = compiled.layout_module
        assert any(isinstance(op, csl.SetRectangleOp) for op in layout.ops)
        assert any(isinstance(op, csl.SetTileCodeOp) for op in layout.ops)
        rect = next(op for op in layout.ops if isinstance(op, csl.SetRectangleOp))
        assert (rect.width, rect.height) == (4, 4)

    def test_program_has_control_skeleton(self, compiled):
        program = compiled.program_module
        func_names = {
            op.sym_name for op in program.ops if isinstance(op, csl.FuncOp)
        }
        task_names = {
            op.sym_name for op in program.ops if isinstance(op, csl.TaskOp)
        }
        assert "f_main" in func_names
        assert "for_inc0" in func_names
        assert "for_post0" in func_names
        assert "for_cond0" in task_names

    def test_program_has_receive_and_done_tasks(self, compiled):
        program = compiled.program_module
        task_names = {
            op.sym_name for op in program.ops if isinstance(op, csl.TaskOp)
        }
        assert any(name.startswith("receive_chunk_cb") for name in task_names)
        assert any(name.startswith("done_exchange_cb") for name in task_names)

    def test_exchange_scheduled_from_loop_body(self, compiled):
        program = compiled.program_module
        exchanges = list(program.walk_type(csl.CommsExchangeOp))
        assert len(exchanges) == 1
        exchange = exchanges[0]
        assert exchange.num_chunks >= 1
        assert len(exchange.directions) == 4  # E, W, N, S for a 6-point stencil

    def test_dsd_builtins_generated(self, compiled):
        program = compiled.program_module
        builtin_ops = [
            op for op in program.walk() if isinstance(op, csl._DsdBuiltinOp)
        ]
        assert builtin_ops, "expected DSD compute builtins in the PE program"

    def test_no_unlowered_ops_remain(self, compiled):
        from repro.dialects import csl_stencil, linalg, stencil, tensor, varith

        leftover = [
            op.name
            for op in compiled.module.walk()
            if isinstance(
                op,
                (
                    stencil.ApplyOp,
                    stencil.AccessOp,
                    stencil.LoadOp,
                    stencil.StoreOp,
                    csl_stencil.ApplyOp,
                    csl_stencil.PrefetchOp,
                    varith.AddOp,
                    varith.MulOp,
                    linalg.AddOp,
                    linalg.MulOp,
                    tensor.InsertSliceOp,
                ),
            )
        ]
        assert leftover == []

    def test_buffers_declared(self, compiled):
        program = compiled.program_module
        buffers = {
            op.attributes["sym_name"].data
            for op in program.walk_type(csl.ZerosOp)
            if "sym_name" in op.attributes
        }
        assert "u" in buffers and "v" in buffers
        assert "receive_buffer" in buffers
        assert any(name.startswith("accumulator") for name in buffers)

    def test_fmacs_generated_for_scaled_reduction(self, compiled):
        program = compiled.program_module
        names = {op.name for op in program.walk()}
        # The (sum) * constant pattern lowers to either fmuls or fmacs.
        assert "csl.fmuls" in names or "csl.fmacs" in names


class TestPipelineOptions:
    def test_single_chunk_configuration(self):
        result = compile_stencil_program(
            jacobi_program(), PipelineOptions(grid_width=4, grid_height=4, num_chunks=1)
        )
        exchange = next(iter(result.program_module.walk_type(csl.CommsExchangeOp)))
        assert exchange.num_chunks == 1

    def test_chunks_clamped_to_divisor(self):
        # z_core = 8, requesting 3 chunks clamps to 2 (largest divisor <= 3).
        result = compile_stencil_program(
            jacobi_program(), PipelineOptions(grid_width=4, grid_height=4, num_chunks=3)
        )
        exchange = next(iter(result.program_module.walk_type(csl.CommsExchangeOp)))
        assert exchange.num_chunks == 2

    def test_wse3_target_recorded(self):
        result = compile_stencil_program(
            jacobi_program(),
            PipelineOptions(grid_width=4, grid_height=4, target="wse3"),
        )
        assert result.program_module.attributes["target"].data == "wse3"

    def test_disable_optimizations_still_compiles(self):
        result = compile_stencil_program(
            jacobi_program(),
            PipelineOptions(
                grid_width=4,
                grid_height=4,
                enable_stencil_inlining=False,
                enable_varith_fusion=False,
                enable_fmac_fusion=False,
                enable_memory_optimization=False,
            ),
        )
        result.module.verify()
        assert result.program_module is not None
