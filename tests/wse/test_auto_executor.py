"""The ``auto`` dispatcher: decision table, calibration, delegation parity.

The dispatcher's contract has three layers, each covered here: the
*decision procedure* (recorded trajectory rows beat the analytic model,
the model's ranking matches the machine-independent intuition), the
*calibration* of the host cost model against a recorded trajectory
snapshot, and the *delegation* (an ``auto`` run is indistinguishable from
running the chosen backend directly, plus the stamped decision metadata).
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.tests_support import run_on_executor
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors.auto import (
    FORCE_ENV_VAR,
    BackendSelector,
    load_recorded_rows,
)
from repro.wse.executors.base import SimulationStatistics
from repro.wse.executors.tiled import SHARD_ENV_VAR
from repro.wse.perf_model import predict_host_seconds
from repro.wse.simulator import WseSimulator


def _star_program(nx, ny, nz, steps=2, name="auto_probe"):
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0)
        + u(1, 0, 0)
        + u(-1, 0, 0)
        + u(0, 1, 0)
        + u(0, -1, 0)
        + u(0, 0, 1)
    ) * Constant(0.25)
    return StencilProgram(
        name=name,
        fields=[FieldDecl("u", (nx, ny, nz)), FieldDecl("v", (nx, ny, nz))],
        equations=[StencilEquation("v", expression)],
        time_steps=steps,
    )


def _compiled(nx, ny, nz=8, steps=2, name="auto_probe"):
    program = _star_program(nx, ny, nz, steps, name)
    result = compile_stencil_program(
        program, PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=2)
    )
    return program, result.program_module


#: a frozen snapshot of recorded BENCH_simulator.json rows (the live file
#: is gitignored and host-specific; the calibration contract is that the
#: analytic model rank-orders backends the same way a real recording did).
#: Grouped by grid, with the (depth, rounds) the recording benchmark used.
RECORDED_SNAPSHOT = {
    ("1x1", 32, 8): {
        "reference": 0.000468,
        "vectorized": 0.001243,
        "compiled": 0.001244,
    },
    ("2x2", 32, 8): {
        "reference": 0.002901,
        "vectorized": 0.001096,
        "compiled": 0.00207,
    },
    ("4x4", 32, 8): {
        "reference": 0.00747,
        "vectorized": 0.00075,
        "compiled": 0.001627,
    },
    ("8x8", 32, 8): {
        "reference": 0.018742,
        "vectorized": 0.000572,
        "compiled": 0.001179,
    },
    ("64x64", 256, 48): {
        "vectorized": 0.282385,
        "compiled": 0.156278,
        "tiled": 0.430783,
    },
    ("128x128", 64, 16): {
        "vectorized": 0.144028,
        "compiled": 0.077495,
    },
}


class TestDecisionTable:
    def test_small_grid_on_one_cpu_avoids_tiled_and_reference(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        selector = BackendSelector(records=[], cpus=1)
        assert "tiled" not in selector.candidates(8, 8)
        choice, rationale = selector.choose(8, 8, depth=32)
        assert choice == "vectorized"
        assert "8x8" in rationale and "host cost model" in rationale

    def test_single_pe_grid_prefers_the_reference_interpreter(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        selector = BackendSelector(records=[], cpus=1)
        choice, _ = selector.choose(1, 1, depth=32)
        assert choice == "reference"

    def test_large_grid_on_one_cpu_prefers_compiled(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        selector = BackendSelector(records=[], cpus=1)
        choice, _ = selector.choose(128, 128, depth=64)
        assert choice == "compiled"

    def test_large_grid_with_many_cpus_prefers_tiled(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        selector = BackendSelector(records=[], cpus=16)
        assert "tiled" in selector.candidates(256, 256)
        choice, rationale = selector.choose(256, 256, depth=64)
        assert choice == "tiled"
        assert "tiled" in rationale

    def test_recorded_rows_override_the_model(self):
        records = [
            {"name": "J", "grid": "8x8", "executor": "vectorized",
             "seconds": 0.9, "speedup": 1.0},
            {"name": "J", "grid": "8x8", "executor": "compiled",
             "seconds": 0.1, "speedup": 9.0, "cache": "warm"},
            {"name": "J", "grid": "8x8", "executor": "reference",
             "seconds": 1.5, "speedup": 0.6},
        ]
        selector = BackendSelector(records=records, cpus=1)
        choice, rationale = selector.choose(8, 8, depth=32)
        assert choice == "compiled"
        assert "recorded on 8x8" in rationale

    def test_warm_rows_beat_cold_rows_for_the_same_backend(self):
        records = [
            {"name": "J", "grid": "8x8", "executor": "compiled",
             "seconds": 5.0, "speedup": 1.0, "cache": "cold"},
            {"name": "J", "grid": "8x8", "executor": "compiled",
             "seconds": 0.1, "speedup": 50.0, "cache": "warm"},
        ]
        selector = BackendSelector(records=records, cpus=1)
        seconds, basis = selector._recorded_seconds("compiled", 8, 8)
        assert seconds == 0.1
        assert basis == "recorded on 8x8"

    def test_near_miss_rows_scale_by_pe_count(self):
        records = [
            {"name": "J", "grid": "8x8", "executor": "vectorized",
             "seconds": 0.064, "speedup": 1.0},
        ]
        selector = BackendSelector(records=records, cpus=1)
        seconds, basis = selector._recorded_seconds("vectorized", 16, 16)
        assert basis == "scaled from recorded 8x8"
        assert seconds == pytest.approx(0.064 * (256 / 64))

    def test_missing_trajectory_degrades_to_the_model(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            "REPRO_AUTO_TRAJECTORY", str(tmp_path / "BENCH_absent.json")
        )
        assert load_recorded_rows() == []


class TestCalibration:
    @pytest.mark.parametrize("key", sorted(RECORDED_SNAPSHOT, key=str))
    def test_model_rank_orders_backends_like_the_recording(self, key):
        """For every recorded grid, the analytic model must order the
        backends exactly as the recorded wall times did — otherwise the
        dispatcher would contradict the profile it claims to be guided by
        whenever the trajectory file is absent."""
        grid, depth, rounds = key
        recorded = RECORDED_SNAPSHOT[key]
        w, _, h = grid.partition("x")
        pes = int(w) * int(h)
        predicted = {
            executor: predict_host_seconds(
                executor,
                pes=pes,
                depth=depth,
                rounds=rounds,
                # The recording host ran affinity-restricted to one CPU
                # with the session's 2x2 shard override.
                cpus=1,
                shards=4,
            )
            for executor in recorded
        }
        recorded_rank = sorted(recorded, key=recorded.__getitem__)
        predicted_rank = sorted(predicted, key=predicted.__getitem__)
        assert predicted_rank == recorded_rank

    def test_unknown_backend_is_diagnosed(self):
        with pytest.raises(KeyError, match="no host cost model"):
            predict_host_seconds("quantum", pes=1, depth=1, rounds=1)


class TestDelegation:
    def test_env_selected_auto_matches_its_delegate_end_to_end(self, monkeypatch):
        """`REPRO_EXECUTOR=auto` must be a drop-in: byte-identical fields
        and equal statistics versus running the chosen backend directly."""
        program, module = _compiled(8, 8, name="auto_parity")
        monkeypatch.setenv("REPRO_EXECUTOR", "auto")
        simulator = WseSimulator(module)
        assert simulator.executor.name == "auto"
        choice = simulator.executor.backend_name
        monkeypatch.delenv("REPRO_EXECUTOR")

        auto_fields, auto_stats = run_on_executor("auto", program, module)
        direct_fields, direct_stats = run_on_executor(choice, program, module)
        for name, expected in direct_fields.items():
            assert auto_fields[name].tobytes() == expected.tobytes()
        assert auto_stats == direct_stats
        assert auto_stats.backend_decision == choice
        assert auto_stats.backend_rationale

    def test_forced_backend_is_obeyed_and_stamped(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENV_VAR, "reference")
        program, module = _compiled(4, 4, name="auto_forced")
        auto_fields, auto_stats = run_on_executor("auto", program, module)
        assert auto_stats.backend_decision == "reference"
        assert FORCE_ENV_VAR in auto_stats.backend_rationale
        monkeypatch.delenv(FORCE_ENV_VAR)
        ref_fields, ref_stats = run_on_executor("reference", program, module)
        for name, expected in ref_fields.items():
            assert auto_fields[name].tobytes() == expected.tobytes()
        assert auto_stats == ref_stats

    def test_per_pe_surface_passes_through(self):
        _, module = _compiled(4, 4, name="auto_surface")
        auto = WseSimulator(module, executor="auto")
        direct = WseSimulator(
            module, executor=auto.executor.backend_name
        )
        for simulator in (auto, direct):
            z = simulator.pe(0, 0).buffers["u"].shape[0]
            simulator.load_field("u", np.ones((4, 4, z), dtype=np.float32))
            simulator.execute()
        assert len(auto.grid) == 4 and all(len(row) == 4 for row in auto.grid)
        centre_auto, centre_direct = auto.pe(2, 2), direct.pe(2, 2)
        assert dict(centre_auto.counters) == dict(centre_direct.counters)
        for name, column in centre_direct.buffers.items():
            assert centre_auto.buffers[name].tobytes() == column.tobytes()


class TestDecisionMetadata:
    def test_metadata_is_excluded_from_statistics_equality(self):
        stamped = SimulationStatistics(
            rounds=3, backend_decision="compiled", backend_rationale="why"
        )
        plain = SimulationStatistics(rounds=3)
        assert stamped == plain

    def test_merge_passes_metadata_through_without_folding(self):
        stamped = SimulationStatistics(
            rounds=2, backend_decision="tiled", backend_rationale="fast"
        )
        other = SimulationStatistics(rounds=1, max_pe_memory_bytes=64)
        merged = SimulationStatistics.merge([stamped, other])
        assert merged.rounds == 3
        assert merged.max_pe_memory_bytes == 64
        assert merged.backend_decision == "tiled"
        assert merged.backend_rationale == "fast"

    def test_metadata_reaches_the_serialised_artifact_shape(self):
        payload = asdict(
            SimulationStatistics(backend_decision="vectorized")
        )
        assert payload["backend_decision"] == "vectorized"
        assert "backend_rationale" in payload
        assert "_METADATA_FIELDS" not in payload
