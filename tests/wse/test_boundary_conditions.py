"""Boundary-condition semantics, pinned across every layer of the stack.

The contract under test (the ISA-modelling discipline of keeping an abstract
and an optimized executor equivalent): for every boundary mode the
``reference`` and ``vectorized`` backends must produce byte-identical fields
and equal :class:`SimulationStatistics`, both must agree with the NumPy
oracle, and a periodic advection at CFL 1 must reproduce the analytic
solution (an exact rotation of the initial condition) bit for bit.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.numpy_ref import (
    allocate_fields,
    field_to_columns,
    run_reference,
)
from repro.benchmarks import benchmark_by_name
from repro.frontends.common import BoundaryCondition
from repro.frontends.flang_like import parse_fortran_stencil
from repro.tests_support import run_on_executor, simulate_against_reference
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator

EXECUTORS = ("reference", "vectorized", "tiled", "compiled", "auto")

BOUNDARIES = (
    BoundaryCondition.dirichlet(),
    BoundaryCondition.dirichlet(1.5),
    BoundaryCondition.periodic(),
    BoundaryCondition.reflect(),
)


class TestGoldenEquivalencePerBoundaryMode:
    """Byte-identical executors + equal statistics, per mode.

    Jacobian pins the distance-1 exchange; Seismic (radius 4) pins the
    multi-distance fold/gather path — including wrap distances larger than
    the fabric extent — which a distance-1-only suite would miss.
    """

    @pytest.mark.parametrize("name", ("Jacobian", "Seismic"))
    @pytest.mark.parametrize("boundary", BOUNDARIES, ids=lambda b: b.spec)
    def test_executors_byte_identical(self, boundary, name):
        benchmark = benchmark_by_name(name)
        program = benchmark.program(nx=5, ny=4, nz=12, time_steps=2)
        result = compile_stencil_program(
            program,
            PipelineOptions(
                grid_width=5, grid_height=4, num_chunks=2, boundary=boundary
            ),
        )
        assert result.options.boundary == boundary
        # Allocate initial halos under the mode actually compiled in, as a
        # production run of this configuration would.
        program = replace(program, boundary=boundary)

        reference_fields, reference_stats = run_on_executor(
            "reference", program, result.program_module
        )
        for executor in EXECUTORS[1:]:
            fields, stats = run_on_executor(
                executor, program, result.program_module
            )
            for name, expected in reference_fields.items():
                actual = fields[name]
                assert actual.tobytes() == expected.tobytes(), (
                    f"field '{name}' differs between reference and "
                    f"{executor} under {boundary.spec}"
                )
            assert stats == reference_stats

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("boundary", BOUNDARIES, ids=lambda b: b.spec)
    def test_simulator_matches_numpy_oracle(self, executor, boundary):
        benchmark = benchmark_by_name("Jacobian")
        program = benchmark.program(nx=5, ny=4, nz=12, time_steps=2)
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(
                grid_width=5, grid_height=4, num_chunks=2, boundary=boundary
            ),
            executor=executor,
        )
        for name in simulated:
            np.testing.assert_allclose(
                simulated[name], reference[name], rtol=2e-5, atol=1e-5,
                err_msg=f"field '{name}' diverged under {boundary.spec}",
            )

    def test_modes_actually_differ(self):
        """The three modes must be observably distinct on a border-heavy
        grid — a dispatch bug that collapsed them would otherwise slip
        through the per-mode oracle tests together."""
        benchmark = benchmark_by_name("Jacobian")
        outputs = {}
        for boundary in BOUNDARIES:
            program = benchmark.program(nx=4, ny=4, nz=8, time_steps=2)
            result = compile_stencil_program(
                program,
                PipelineOptions(
                    grid_width=4, grid_height=4, num_chunks=2, boundary=boundary
                ),
            )
            program = replace(program, boundary=boundary)
            fields, _ = run_on_executor("vectorized", program, result.program_module)
            outputs[boundary.spec] = fields["v"].tobytes()
        assert len(set(outputs.values())) == len(outputs)


class TestAnalyticPeriodicAdvection:
    """Upwind advection at CFL 1 on a torus is an exact rotation."""

    def _program(self, nx: int, steps: int):
        source = f"""
        !$repro boundary(periodic)
        do i = 1, {nx}
          do j = 1, 3
            do k = 1, 6
              u(k,j,i) = u(k,j,i-1)
            enddo
          enddo
        enddo
        """
        return parse_fortran_stencil(
            source, name="advect_cfl1", time_steps=steps, halo=(1, 1, 1)
        )

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_rotation_is_exact_on_the_fabric(self, executor):
        steps = 3
        program = self._program(nx=6, steps=steps)
        result = compile_stencil_program(
            program, PipelineOptions(grid_width=6, grid_height=3, num_chunks=2)
        )
        rng = np.random.default_rng(11)
        fields = allocate_fields(program, lambda n, s: rng.uniform(-1, 1, s))
        initial = field_to_columns(program, "u", fields["u"]).copy()

        simulator = WseSimulator(result.program_module, executor=executor)
        simulator.load_field("u", initial.copy())
        simulator.execute()
        out = simulator.read_field("u")

        hz = program.field("u").halo[2]
        core = slice(hz, out.shape[2] - hz)
        expected = np.roll(initial, steps, axis=0)
        # The z core rotates exactly; the z halo stays as loaded (it is
        # per-PE-static, never exchanged).
        assert out[:, :, core].tobytes() == expected[:, :, core].tobytes()
        assert out[:, :, :hz].tobytes() == initial[:, :, :hz].tobytes()

    def test_rotation_is_exact_in_the_numpy_oracle(self):
        steps = 4
        program = self._program(nx=6, steps=steps)
        rng = np.random.default_rng(23)
        fields = allocate_fields(program, lambda n, s: rng.uniform(-1, 1, s))
        initial = field_to_columns(program, "u", fields["u"]).copy()
        run_reference(program, fields)
        rotated = np.roll(initial, steps, axis=0)
        hz = program.field("u").halo[2]
        core = slice(hz, initial.shape[2] - hz)
        result = field_to_columns(program, "u", fields["u"])
        assert result[:, :, core].tobytes() == rotated[:, :, core].tobytes()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_advection_benchmark_matches_oracle(self, executor):
        """The registered periodic-advection workload (CFL 0.45) against
        the oracle, under both backends."""
        benchmark = benchmark_by_name("Advection")
        assert benchmark.boundary == "periodic"
        program = benchmark.program(nx=6, ny=3, nz=10, time_steps=3)
        assert program.boundary == BoundaryCondition.periodic()
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=6, grid_height=3, num_chunks=2),
            executor=executor,
        )
        np.testing.assert_allclose(
            simulated["u"], reference["u"], rtol=2e-5, atol=1e-5
        )


class TestReflectiveHeatWorkload:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_reflective_heat_matches_oracle(self, executor):
        benchmark = benchmark_by_name("ReflectiveHeat")
        assert benchmark.boundary == "reflect"
        program = benchmark.program(nx=5, ny=5, nz=10, time_steps=2)
        assert program.boundary == BoundaryCondition.reflect()
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=5, grid_height=5, num_chunks=2),
            executor=executor,
        )
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=2e-5, atol=1e-5
        )


class TestDirichletValueFill:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_border_reads_see_the_constant(self, executor):
        """``v = u(+1, 0, 0)`` with ``dirichlet(2.5)``: the easternmost
        column of PEs reads the constant instead of zero."""
        from repro.frontends.common import (
            Constant,
            FieldAccess,
            FieldDecl,
            StencilEquation,
            StencilProgram,
        )

        program = StencilProgram(
            name="east_fill",
            fields=[FieldDecl("u", (4, 4, 6)), FieldDecl("v", (4, 4, 6))],
            equations=[
                StencilEquation("v", FieldAccess("u", (1, 0, 0)) * Constant(1.0))
            ],
            time_steps=1,
            boundary=BoundaryCondition.dirichlet(2.5),
        )
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=1)
        result = compile_stencil_program(program, options)
        simulator = WseSimulator(result.program_module, executor=executor)
        assert simulator.boundary == BoundaryCondition.dirichlet(2.5)
        z_total = 6 + 2 * program.field("u").halo[2]
        simulator.load_field("u", np.ones((4, 4, z_total), dtype=np.float32))
        simulator.execute()
        v = simulator.read_field("v")
        halo = program.field("v").halo[2]
        core = slice(halo, v.shape[2] - halo)
        assert np.all(v[:-1, :, core] == 1.0)
        assert np.all(v[-1, :, core] == 2.5)


class TestBoundaryConditionApi:
    def test_parse_round_trips_the_spec(self):
        for boundary in BOUNDARIES:
            assert BoundaryCondition.parse(boundary.spec) == boundary

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown boundary kind"):
            BoundaryCondition("absorbing")

    def test_value_only_valid_for_dirichlet(self):
        with pytest.raises(ValueError, match="takes no value"):
            BoundaryCondition("periodic", 2.0)
        with pytest.raises(ValueError, match="takes no value"):
            BoundaryCondition.parse("reflect:1.0")

    def test_fold_semantics(self):
        periodic = BoundaryCondition.periodic()
        reflect = BoundaryCondition.reflect()
        dirichlet = BoundaryCondition.dirichlet()
        assert periodic.fold(-1, 4) == 3
        assert periodic.fold(4, 4) == 0
        assert periodic.fold(-5, 4) == 3
        assert reflect.fold(-1, 4) == 0  # edge cell repeated (symmetric)
        assert reflect.fold(-2, 4) == 1
        assert reflect.fold(4, 4) == 3
        assert reflect.fold(5, 4) == 2
        assert dirichlet.fold(-1, 4) is None
        assert dirichlet.fold(2, 4) == 2

    def test_program_image_exposes_the_boundary(self):
        program = benchmark_by_name("Jacobian").program(
            nx=3, ny=3, nz=8, time_steps=1
        )
        result = compile_stencil_program(
            program,
            PipelineOptions(
                grid_width=3, grid_height=3, num_chunks=1, boundary="reflect"
            ),
        )
        simulator = WseSimulator(result.program_module)
        assert simulator.boundary == BoundaryCondition.reflect()

    def test_emitted_csl_names_the_boundary(self):
        from repro.backend.csl_printer import print_csl_sources

        program = benchmark_by_name("Jacobian").program(
            nx=3, ny=3, nz=8, time_steps=1
        )
        result = compile_stencil_program(
            program,
            PipelineOptions(
                grid_width=3, grid_height=3, num_chunks=1, boundary="periodic"
            ),
        )
        sources = print_csl_sources(result.csl_modules)
        program_text = "\n".join(sources.values())
        assert 'boundary = "periodic"' in program_text


class TestChainedEquationsUnderNonDirichlet:
    """Multi-equation steps exercise the oracle's per-equation stale/refresh
    ordering: a field written by one equation and read at (x, y) offsets by
    the next must see its rim refreshed exactly like the fabric's per-apply
    exchange."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize(
        "boundary",
        (BoundaryCondition.periodic(), BoundaryCondition.reflect()),
        ids=lambda b: b.spec,
    )
    def test_read_after_write_rim_refresh_matches_backends(
        self, executor, boundary
    ):
        from repro.frontends.common import (
            Constant,
            FieldAccess,
            FieldDecl,
            StencilEquation,
            StencilProgram,
        )

        u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
        v = lambda dx, dy, dz: FieldAccess("v", (dx, dy, dz))
        program = StencilProgram(
            name="chained_xy",
            fields=[
                FieldDecl("u", (4, 5, 8)),
                FieldDecl("v", (4, 5, 8)),
                FieldDecl("w", (4, 5, 8)),
            ],
            equations=[
                StencilEquation(
                    "v", (u(1, 0, 0) + u(-1, 0, 0)) * Constant(0.5)
                ),
                StencilEquation(
                    "w", (v(1, 0, 0) + v(0, 1, 0)) * Constant(0.5)
                ),
            ],
            time_steps=3,
            boundary=boundary,
        )
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=4, grid_height=5, num_chunks=2),
            executor=executor,
        )
        for name in simulated:
            np.testing.assert_allclose(
                simulated[name], reference[name], rtol=2e-5, atol=1e-5,
                err_msg=f"field '{name}' diverged under {boundary.spec}",
            )
