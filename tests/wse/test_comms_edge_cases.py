"""CommsRuntime edge cases, exercised under both execution backends.

Three regimes stress the chunked halo exchange:

* a **1×1 grid** — every neighbour is outside the fabric, so the whole halo
  is Dirichlet-zero and the exchange degenerates to zero-fill;
* **border PEs** — only some directions fall off the fabric; their
  contribution must be exactly zero while interior directions flow;
* **chunk counts that don't divide the column** — the pipeline clamps the
  requested count to the largest divisor of the core column length, so odd
  requests still produce whole chunks; the runtime must deliver them all.
"""

import numpy as np
import pytest

from repro.dialects import csl
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.tests_support import simulate_against_reference
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator

EXECUTORS = ("reference", "vectorized", "tiled", "compiled", "auto")


def _star_program(nx, ny, nz, steps=1, name="edge"):
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0)
        + u(1, 0, 0)
        + u(-1, 0, 0)
        + u(0, 1, 0)
        + u(0, -1, 0)
        + u(0, 0, 1)
    ) * Constant(0.25)
    return StencilProgram(
        name=name,
        fields=[FieldDecl("u", (nx, ny, nz)), FieldDecl("v", (nx, ny, nz))],
        equations=[StencilEquation("v", expression)],
        time_steps=steps,
    )


class TestSinglePeGrid:
    """On a 1×1 fabric every exchanged value is a Dirichlet zero."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_matches_reference_model(self, executor):
        program = _star_program(1, 1, 8, steps=2, name="lonely")
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=1, grid_height=1, num_chunks=2),
            executor=executor,
        )
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )

    def test_executors_agree_bit_for_bit(self):
        program = _star_program(1, 1, 8, steps=2, name="lonely")
        options = PipelineOptions(grid_width=1, grid_height=1, num_chunks=2)
        outputs = {
            executor: simulate_against_reference(
                program, options, executor=executor
            )[0]["v"]
            for executor in EXECUTORS
        }
        reference_bytes = outputs["reference"].tobytes()
        for executor in EXECUTORS[1:]:
            assert outputs[executor].tobytes() == reference_bytes, (
                f"executor '{executor}' diverged from the reference"
            )


class TestBorderPes:
    """PEs on the fabric edge read zeros from off-fabric directions."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_east_only_stencil_zeroes_the_east_border(self, executor):
        """``v = u(+1, 0, 0)``: the easternmost column of PEs has no eastern
        neighbour, so its result column must be exactly zero."""
        program = StencilProgram(
            name="east_shift",
            fields=[FieldDecl("u", (4, 4, 6)), FieldDecl("v", (4, 4, 6))],
            equations=[
                StencilEquation("v", FieldAccess("u", (1, 0, 0)) * Constant(1.0))
            ],
            time_steps=1,
        )
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=1)
        result = compile_stencil_program(program, options)
        simulator = WseSimulator(result.program_module, executor=executor)
        u_decl = program.field("u")
        z_total = u_decl.shape[2] + 2 * u_decl.halo[2]
        columns = np.ones((4, 4, z_total), dtype=np.float32)
        simulator.load_field("u", columns)
        simulator.execute()
        v = simulator.read_field("v")
        halo = program.field("v").halo[2]
        core = slice(halo, v.shape[2] - halo)
        # Interior x-columns see their eastern neighbour's ones ...
        assert np.all(v[:-1, :, core] == 1.0)
        # ... while the eastern border sees the Dirichlet-zero halo.
        assert np.all(v[-1, :, core] == 0.0)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_full_star_matches_reference_on_borders(self, executor):
        program = _star_program(3, 5, 6, steps=2, name="bordered")
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=3, grid_height=5, num_chunks=2),
            executor=executor,
        )
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )


class TestUnevenChunkRequests:
    """Requested chunk counts that don't divide the core column length."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize(
        ("nz", "requested"),
        [
            (10, 4),  # clamped to 2 chunks of 5
            (7, 3),  # prime column: clamped to a single chunk of 7
            (6, 4),  # clamped to 3 chunks of 2
        ],
    )
    def test_clamped_chunking_is_correct(self, executor, nz, requested):
        program = _star_program(3, 3, nz, steps=1, name=f"chunks{nz}_{requested}")
        options = PipelineOptions(grid_width=3, grid_height=3, num_chunks=requested)
        result = compile_stencil_program(program, options)

        exchange_ops = [
            op
            for op in result.program_module.walk()
            if isinstance(op, csl.CommsExchangeOp)
        ]
        assert exchange_ops, "expected a comms exchange in the program"
        for op in exchange_ops:
            chunk_size = op.attributes["chunk_size"].value
            src_len = op.attributes["src_len"].value
            # Whole chunks covering the column exactly, never the raw request.
            assert chunk_size * op.num_chunks == src_len

        simulated, reference = simulate_against_reference(
            program, options, executor=executor
        )
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )

    def test_uneven_request_executors_agree_bit_for_bit(self):
        program = _star_program(3, 3, 10, steps=2, name="chunks_parity")
        options = PipelineOptions(grid_width=3, grid_height=3, num_chunks=4)
        outputs = {
            executor: simulate_against_reference(
                program, options, executor=executor
            )[0]["v"]
            for executor in EXECUTORS
        }
        reference_bytes = outputs["reference"].tobytes()
        for executor in EXECUTORS[1:]:
            assert outputs[executor].tobytes() == reference_bytes, (
                f"executor '{executor}' diverged from the reference"
            )


class TestRaggedGridValidation:
    """Regression: CommsRuntime derived its width from row 0 only, so a
    ragged grid silently truncated or over-indexed delivery."""

    def test_ragged_grid_is_rejected_with_a_descriptive_error(self):
        from repro.wse.pe import ProcessingElement
        from repro.wse.runtime import CommsRuntime

        grid = [
            [ProcessingElement(x, 0) for x in range(3)],
            [ProcessingElement(x, 1) for x in range(2)],
        ]
        with pytest.raises(ValueError, match="ragged PE grid: row 1 has 2"):
            CommsRuntime(grid)

    def test_rectangular_grids_still_accepted(self):
        from repro.wse.pe import ProcessingElement
        from repro.wse.runtime import CommsRuntime

        grid = [[ProcessingElement(x, y) for x in range(3)] for y in range(2)]
        runtime = CommsRuntime(grid)
        assert (runtime.width, runtime.height) == (3, 2)

    def test_empty_grid_is_accepted(self):
        from repro.wse.runtime import CommsRuntime

        runtime = CommsRuntime([])
        assert (runtime.width, runtime.height) == (0, 0)
