"""The compiled backend's own mechanics: codegen, cache, fallback.

The heavyweight numerical guarantees (byte-identical fields and statistics
against every other backend, on every benchmark and boundary mode, plus
the pre-plan golden digests) live in ``test_executor_equivalence.py``,
``test_boundary_conditions.py`` and ``test_execution_plan.py``.  This file
covers what is specific to the ``compiled`` backend itself:

* **deterministic emission** — the same image and plan always produce
  byte-identical kernel source (what makes the content fingerprint and the
  fleet-wide source store sound), pinned through the
  ``REPRO_COMPILED_DUMP`` debug dump;
* **the kernel cache** — memo hits, store round-trips and their counters;
* **the interpretation fallback** — a program the generator cannot fuse
  still runs, bit-identical to ``vectorized``, with the reason recorded.
"""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.dialects import csl
from repro.frontends.common import BoundaryCondition
from repro.ir.exceptions import InterpretationError
from repro.service.kernels import KernelSourceStore
from repro.tests_support import run_on_executor
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.codegen import (
    CODEGEN_VERSION,
    DUMP_ENV_VAR,
    KernelCodegenError,
    generate_kernel_source,
    get_kernel,
    kernel_cache_statistics,
    kernel_fingerprint,
    reset_kernel_cache,
)
from repro.wse.interpreter import ProgramImage
from repro.wse.plan import ExecutionPlan
from repro.wse.simulator import WseSimulator


@pytest.fixture(autouse=True)
def _fresh_kernel_cache():
    """Each test observes its own memo and counters."""
    reset_kernel_cache()
    yield
    reset_kernel_cache()


def _image(grid=4, name="Jacobian", steps=2):
    benchmark = benchmark_by_name(name)
    program = benchmark.program(nx=grid, ny=grid, nz=8, time_steps=steps)
    result = compile_stencil_program(
        program,
        PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2),
    )
    image = ProgramImage(result.program_module)
    plan = ExecutionPlan.compile(image, grid, grid)
    return program, result.program_module, image, plan


class TestDeterministicEmission:
    def test_source_is_byte_identical_across_compiles(self):
        """Two emissions — and two *pipeline compiles* — of the same
        program yield the same fingerprint and the same source bytes."""
        _, _, image, plan = _image()
        fingerprint = kernel_fingerprint(image, plan)
        first = generate_kernel_source(image, plan, fingerprint)
        assert first == generate_kernel_source(image, plan, fingerprint)
        _, _, again_image, again_plan = _image()
        assert kernel_fingerprint(again_image, again_plan) == fingerprint
        assert generate_kernel_source(
            again_image, again_plan, fingerprint
        ) == first

    def test_dump_emits_deterministic_golden_source(self, monkeypatch, tmp_path):
        """``REPRO_COMPILED_DUMP`` writes the kernel beside the cache; a
        second cold compile rewrites byte-identical contents."""
        monkeypatch.setenv(DUMP_ENV_VAR, str(tmp_path))
        _, _, image, plan = _image()
        kernel = get_kernel(image, plan)
        dumped = tmp_path / f"kernel_{kernel.fingerprint[:12]}.py"
        assert dumped.is_file()
        golden = dumped.read_bytes()
        assert golden.decode("utf-8") == kernel.source
        dumped.unlink()
        reset_kernel_cache()  # force a genuine re-codegen, not a memo hit
        again = get_kernel(image, plan)
        assert again.fingerprint == kernel.fingerprint
        assert dumped.read_bytes() == golden
        assert kernel_cache_statistics().codegens == 1  # post-reset count

    def test_fingerprint_tracks_plan_and_codegen_version(self, monkeypatch):
        _, _, image, plan = _image()
        base = kernel_fingerprint(image, plan)
        periodic = ExecutionPlan.compile(
            image,
            plan.width,
            plan.height,
            boundary=BoundaryCondition.periodic(),
        )
        assert kernel_fingerprint(image, periodic) != base
        monkeypatch.setattr(
            "repro.wse.codegen.CODEGEN_VERSION", CODEGEN_VERSION + 1
        )
        assert kernel_fingerprint(image, plan) != base


class TestKernelCache:
    def test_memo_hits_skip_codegen(self):
        _, _, image, plan = _image()
        kernel = get_kernel(image, plan)
        assert get_kernel(image, plan) is kernel
        statistics = kernel_cache_statistics()
        assert statistics.codegens == 1
        assert statistics.memory_hits == 1
        assert statistics.disk_hits == 0
        assert statistics.hits == 1 and statistics.lookups == 2

    def test_store_round_trip_is_a_disk_hit(self, tmp_path):
        store = KernelSourceStore(tmp_path)
        _, _, image, plan = _image()
        kernel = get_kernel(image, plan, store=store)
        assert kernel.fingerprint in store
        reset_kernel_cache()  # a "new process": memo gone, store warm
        served = get_kernel(image, plan, store=store)
        statistics = kernel_cache_statistics()
        assert statistics.disk_hits == 1
        assert statistics.codegens == 0
        assert served.source == kernel.source

    def test_executors_of_one_program_share_one_kernel(self):
        _, module, _, _ = _image()
        WseSimulator(module, executor="compiled")
        WseSimulator(module, executor="compiled")
        statistics = kernel_cache_statistics()
        assert statistics.codegens == 1
        assert statistics.memory_hits == 1


class TestFallback:
    def test_unsupported_op_refuses_fusion(self):
        """An op the interpreter rejects too (DSD rebasing) must surface
        as a KernelCodegenError, not generate broken source."""
        _, _, image, plan = _image(grid=3, steps=1)
        target = next(
            op
            for func in image.callables.values()
            for op in func.body_block.ops
            if isinstance(op, csl.GetMemDsdOp)
        )
        rebase = csl.SetDsdBaseAddrOp(target.result, target.result)
        target.parent.insert_op_after(rebase, target)
        with pytest.raises(
            KernelCodegenError, match="unsupported operation 'csl.set_dsd"
        ):
            generate_kernel_source(image, plan)

    def test_codegen_decline_falls_back_to_interpretation(self, monkeypatch):
        """When codegen declines, the backend records why and interprets —
        bit-identical fields and statistics to ``vectorized``."""
        import repro.wse.executors.compiled as compiled_module

        def declined(image, plan, store=None):
            raise KernelCodegenError("test: declined")

        monkeypatch.setattr(compiled_module, "get_kernel", declined)
        program, module, _, _ = _image()
        simulator = WseSimulator(module, executor="compiled")
        assert simulator.executor.kernel is None
        assert simulator.executor.fallback_reason == "test: declined"
        assert simulator.executor.kernel_fingerprint is None
        fields, statistics = run_on_executor("compiled", program, module)
        expected_fields, expected_statistics = run_on_executor(
            "vectorized", program, module
        )
        for name, expected in expected_fields.items():
            assert fields[name].tobytes() == expected.tobytes()
        assert statistics == expected_statistics

    def test_unknown_entry_diagnosis_matches_the_interpreter(self):
        _, module, _, _ = _image(grid=3, steps=1)
        simulator = WseSimulator(module, executor="compiled")
        with pytest.raises(
            InterpretationError, match="unknown function or task 'nope'"
        ):
            simulator.launch("nope")
