"""End-to-end functional validation: compiled programs running on the fabric
simulator produce the same results as the NumPy reference executor."""

import numpy as np
import pytest

from repro.baselines.numpy_ref import (
    allocate_fields,
    field_to_columns,
    run_reference,
)
from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator


def _random_initializer(seed: int):
    rng = np.random.default_rng(seed)

    def initializer(name, shape):
        return rng.uniform(-1.0, 1.0, size=shape)

    return initializer


def simulate(program: StencilProgram, options: PipelineOptions, seed: int = 7):
    """Compile, load random data, run on the simulator, and also run the
    reference; returns (simulated_fields, reference_fields)."""
    result = compile_stencil_program(program, options)
    simulator = WseSimulator(result.program_module)

    fields = allocate_fields(program, _random_initializer(seed))
    reference_fields = {name: array.copy() for name, array in fields.items()}

    for decl in program.fields:
        simulator.load_field(decl.name, field_to_columns(program, decl.name, fields[decl.name]))

    simulator.execute()
    run_reference(program, reference_fields)

    simulated = {
        decl.name: simulator.read_field(decl.name) for decl in program.fields
    }
    reference = {
        decl.name: field_to_columns(program, decl.name, reference_fields[decl.name])
        for decl in program.fields
    }
    return simulated, reference, simulator


def jacobi_like_program(nx, ny, nz, steps, in_place=False):
    access = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        access(0, 0, 0)
        + access(1, 0, 0)
        + access(-1, 0, 0)
        + access(0, 1, 0)
        + access(0, -1, 0)
        + access(0, 0, 1)
        + access(0, 0, -1)
    ) * Constant(0.12345)
    output = "u" if in_place else "v"
    fields = [FieldDecl("u", (nx, ny, nz))]
    if not in_place:
        fields.append(FieldDecl("v", (nx, ny, nz)))
    return StencilProgram(
        name="jacobi_like",
        fields=fields,
        equations=[StencilEquation(output, expression)],
        time_steps=steps,
    )


class TestJacobiCorrectness:
    @pytest.mark.parametrize("num_chunks", [1, 2])
    def test_single_step_matches_reference(self, num_chunks):
        program = jacobi_like_program(4, 4, 8, steps=1)
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=num_chunks)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )

    def test_multi_step_matches_reference(self):
        program = jacobi_like_program(4, 4, 8, steps=3)
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )

    def test_in_place_update_matches_reference(self):
        program = jacobi_like_program(4, 4, 8, steps=2, in_place=True)
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["u"], reference["u"], rtol=1e-5, atol=1e-6
        )

    def test_non_square_grid(self):
        program = jacobi_like_program(3, 5, 6, steps=2)
        options = PipelineOptions(grid_width=3, grid_height=5, num_chunks=2)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["v"], reference["v"], rtol=1e-5, atol=1e-6
        )


class TestCoefficientStencilCorrectness:
    def test_per_direction_coefficients(self):
        """A stencil with distinct per-direction coefficients (promoted into
        the receive path) must still match the reference."""
        access = lambda dx, dy, dz: FieldAccess("p", (dx, dy, dz))
        expression = (
            access(0, 0, 0) * Constant(-2.5)
            + access(1, 0, 0) * Constant(0.1)
            + access(-1, 0, 0) * Constant(0.2)
            + access(0, 1, 0) * Constant(0.3)
            + access(0, -1, 0) * Constant(0.4)
            + access(0, 0, 1) * Constant(0.5)
            + access(0, 0, -1) * Constant(0.6)
        )
        program = StencilProgram(
            name="weighted",
            fields=[FieldDecl("p", (4, 4, 8)), FieldDecl("q", (4, 4, 8))],
            equations=[StencilEquation("q", expression)],
            time_steps=2,
        )
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["q"], reference["q"], rtol=1e-5, atol=1e-6
        )

    def test_wider_star_stencil(self):
        """Radius-2 star accesses exercise multi-hop exchanges."""
        access = lambda dx, dy, dz: FieldAccess("a", (dx, dy, dz))
        expression = (
            access(0, 0, 0) * Constant(0.5)
            + (access(1, 0, 0) + access(-1, 0, 0)) * Constant(0.125)
            + (access(2, 0, 0) + access(-2, 0, 0)) * Constant(0.0625)
            + (access(0, 1, 0) + access(0, -1, 0)) * Constant(0.125)
            + (access(0, 2, 0) + access(0, -2, 0)) * Constant(0.0625)
            + (access(0, 0, 1) + access(0, 0, -1)) * Constant(0.125)
        )
        program = StencilProgram(
            name="wide_star",
            fields=[
                FieldDecl("a", (5, 5, 6), halo=(2, 2, 2)),
                FieldDecl("b", (5, 5, 6), halo=(2, 2, 2)),
            ],
            equations=[StencilEquation("b", expression)],
            time_steps=1,
        )
        options = PipelineOptions(grid_width=5, grid_height=5, num_chunks=1)
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(
            simulated["b"], reference["b"], rtol=1e-5, atol=1e-6
        )


class TestMultiEquationCorrectness:
    def test_two_fields_updated_per_step(self):
        """Two equations per time step chain two exchanges per iteration
        (the Figure 1 structure)."""
        a = lambda dx, dy, dz: FieldAccess("a", (dx, dy, dz))
        b = lambda dx, dy, dz: FieldAccess("b", (dx, dy, dz))
        eq_a = (a(0, 0, 0) + a(1, 0, 0) + a(-1, 0, 0) + a(0, 0, 1)) * Constant(0.12345)
        eq_b = (b(0, 1, 0) + b(0, -1, 0) + b(0, 0, -1)) * Constant(0.23456)
        program = StencilProgram(
            name="two_fields",
            fields=[FieldDecl("a", (4, 4, 8)), FieldDecl("b", (4, 4, 8))],
            equations=[StencilEquation("a", eq_a), StencilEquation("b", eq_b)],
            time_steps=2,
        )
        options = PipelineOptions(
            grid_width=4, grid_height=4, num_chunks=2,
            enable_stencil_inlining=False,
        )
        simulated, reference, _ = simulate(program, options)
        np.testing.assert_allclose(simulated["a"], reference["a"], rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(simulated["b"], reference["b"], rtol=1e-5, atol=1e-6)


class TestSimulatorStatistics:
    def test_exchange_and_task_counts(self):
        program = jacobi_like_program(4, 4, 8, steps=3)
        options = PipelineOptions(grid_width=4, grid_height=4, num_chunks=2)
        _, _, simulator = simulate(program, options)
        stats = simulator.statistics
        # One exchange per PE per time step.
        assert stats.exchanges == 4 * 4 * 3
        assert stats.tasks_run > 0
        assert stats.wavelets_sent > 0
        assert stats.max_pe_memory_bytes > 0

    def test_memory_fits_single_pe_budget(self):
        program = jacobi_like_program(4, 4, 8, steps=1)
        options = PipelineOptions(grid_width=4, grid_height=4)
        _, _, simulator = simulate(program, options)
        from repro.wse.machine import WSE2

        assert simulator.statistics.max_pe_memory_bytes < WSE2.pe_memory_bytes
