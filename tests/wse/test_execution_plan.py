"""The execution plan: determinism, content, and golden non-regression.

Two properties anchor the plan-compiled executor core:

* **determinism** — lowering the same program image twice yields equal
  plans (canonical forms compare equal member by member), which is what
  lets run-level fingerprints reference :data:`PLAN_VERSION` instead of
  hashing plans;
* **non-regression** — the plan-consuming ``vectorized`` executor still
  produces the exact bytes the pre-plan implementation did.  The digests
  below were captured from the repository state *before* the executors
  were rewritten to consume plans (Jacobian / Seismic / UVKBE, every
  boundary mode, the golden-equivalence grid sizes and seed).
"""

import hashlib

import pytest

from repro.benchmarks import benchmark_by_name
from repro.frontends.common import BoundaryCondition
from repro.tests_support import run_on_executor
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.interpreter import ProgramImage
from repro.wse.plan import PLAN_VERSION, ExecutionPlan, build_halo_table


def _compiled_image(name="Jacobian", grid=4, boundary=None):
    benchmark = benchmark_by_name(name)
    program = benchmark.program(nx=grid, ny=grid, nz=8, time_steps=2)
    options = PipelineOptions(
        grid_width=grid, grid_height=grid, num_chunks=2, boundary=boundary
    )
    result = compile_stencil_program(program, options)
    return ProgramImage(result.program_module), grid


class TestPlanDeterminism:
    def test_compiling_the_same_image_twice_yields_equal_plans(self):
        image, grid = _compiled_image()
        first = ExecutionPlan.compile(image, grid, grid)
        second = ExecutionPlan.compile(image, grid, grid)
        assert first == second
        assert first.canonical() == second.canonical()

    def test_canonical_form_is_json_stable(self):
        import json

        image, grid = _compiled_image()
        plan = ExecutionPlan.compile(image, grid, grid)
        text = json.dumps(plan.canonical(), sort_keys=True)
        again = json.dumps(
            ExecutionPlan.compile(image, grid, grid).canonical(), sort_keys=True
        )
        assert text == again
        assert json.loads(text)["plan_version"] == PLAN_VERSION

    def test_reads_never_change_the_canonical_form(self):
        """Probing a direction no exchange declared (a host-side read path)
        must not mutate the plan's canonical form or equality."""
        image, grid = _compiled_image()
        probed = ExecutionPlan.compile(image, grid, grid)
        pristine = ExecutionPlan.compile(image, grid, grid)
        before = probed.canonical()
        probed.halo_table((2, 2))
        probed.gather_indices((0, 3))
        probed.neighbor((5, 5), 0, 0)
        assert probed.canonical() == before
        assert probed == pristine

    def test_boundary_override_changes_the_plan(self):
        image, grid = _compiled_image()
        dirichlet = ExecutionPlan.compile(image, grid, grid)
        periodic = ExecutionPlan.compile(
            image, grid, grid, boundary=BoundaryCondition.periodic()
        )
        assert dirichlet != periodic


class TestPlanContent:
    def test_plan_resolves_exchange_schedule_and_dsds(self):
        image, grid = _compiled_image()
        plan = ExecutionPlan.compile(image, grid, grid)
        canonical = plan.canonical()
        assert canonical["exchanges"], "expected a comms exchange in the plan"
        assert canonical["static_dsds"], "expected static DSD access plans"
        # Every exchange's directions got a halo table.
        exchange_directions = {
            tuple(direction)
            for _, exchange in canonical["exchanges"]
            for direction in exchange["directions"]
        }
        table_directions = {
            tuple(table["direction"]) for table in canonical["halo"]
        }
        assert exchange_directions <= table_directions

    def test_activation_order_starts_at_the_entry(self):
        image, grid = _compiled_image()
        plan = ExecutionPlan.compile(image, grid, grid)
        assert plan.activation_order[0] == plan.entry
        assert set(plan.activation_order) == set(image.callables)

    def test_buffer_sizes_follow_the_image(self):
        image, grid = _compiled_image()
        plan = ExecutionPlan.compile(image, grid, grid)
        assert plan.buffers == image.buffers
        assert plan.memory_per_pe_bytes() == sum(
            size * 4 for size in image.buffers.values()
        )

    @pytest.mark.parametrize(
        ("mode", "folded_minus_one", "folded_n"),
        [
            ("dirichlet", None, None),
            ("periodic", 4, 0),
            ("reflect", 0, 4),
        ],
    )
    def test_halo_tables_fold_like_the_boundary(
        self, mode, folded_minus_one, folded_n
    ):
        boundary = BoundaryCondition.parse(mode)
        west = build_halo_table(boundary, (-1, 0), 5, 5)
        east = build_halo_table(boundary, (1, 0), 5, 5)
        assert west.cols[0] == folded_minus_one  # index -1
        assert east.cols[4] == folded_n  # index 5
        assert west.rows == tuple(range(5))  # dy = 0 never folds
        assert west.gatherable == (mode != "dirichlet")

    def test_neighbor_lookup_matches_fold(self):
        image, grid = _compiled_image(boundary=BoundaryCondition.periodic())
        plan = ExecutionPlan.compile(
            image, grid, grid, boundary=BoundaryCondition.periodic()
        )
        assert plan.neighbor((1, 0), grid - 1, 0) == (0, 0)
        assert plan.neighbor((-1, 0), 0, 2) == (grid - 1, 2)

    def test_dirichlet_neighbor_off_fabric_is_none(self):
        image, grid = _compiled_image()
        plan = ExecutionPlan.compile(image, grid, grid)
        assert plan.neighbor((1, 0), grid - 1, 0) is None
        assert plan.neighbor((1, 0), 0, 0) == (1, 0)


# --------------------------------------------------------------------------- #
# Golden non-regression: plan-consuming executors vs the pre-plan bytes
# --------------------------------------------------------------------------- #

#: SHA-256 prefixes of the written field, captured on the pre-plan
#: implementation (grid 6 / 9 for Seismic, nz=16, 2 steps, seed 13).
PRE_PLAN_GOLDEN_DIGESTS = {
    ("Jacobian", "dirichlet", "v"): "2be322be1f213989945e323d33347eb3",
    ("Jacobian", "periodic", "v"): "98982db083c5063350565e65c2868433",
    ("Jacobian", "reflect", "v"): "1725d1bdf7c9db96b6de307bcf84d2a4",
    ("Seismic", "dirichlet", "v"): "97c0ff35104c9d0e28457412953c9214",
    ("Seismic", "periodic", "v"): "a95a073c80aad52bf25970d41efc0bfe",
    ("Seismic", "reflect", "v"): "d6eb03dd2d66b2ca1c041453cdfce7ee",
    ("UVKBE", "dirichlet", "out"): "894dacb511f49131967f8df0567db244",
    ("UVKBE", "periodic", "out"): "a696c0c33a9b07aa4cffba63f796e64b",
    ("UVKBE", "reflect", "out"): "b3c6cce2a259d85db288b98ccedf9f3c",
}


@pytest.mark.parametrize("executor", ("vectorized", "compiled"))
@pytest.mark.parametrize(
    ("name", "mode", "field_name"), sorted(PRE_PLAN_GOLDEN_DIGESTS)
)
def test_plan_consuming_executors_match_pre_plan_golden_fields(
    name, mode, field_name, executor
):
    benchmark = benchmark_by_name(name)
    grid = 9 if benchmark.stencil_points >= 25 else 6
    program = benchmark.program(nx=grid, ny=grid, nz=16, time_steps=2)
    options = PipelineOptions(
        grid_width=grid,
        grid_height=grid,
        num_chunks=2,
        boundary=BoundaryCondition.parse(mode),
    )
    result = compile_stencil_program(program, options)
    fields, _ = run_on_executor(executor, program, result.program_module)
    digest = hashlib.sha256(fields[field_name].tobytes()).hexdigest()[:32]
    assert digest == PRE_PLAN_GOLDEN_DIGESTS[(name, mode, field_name)], (
        f"plan-consuming '{executor}' diverged from the pre-plan golden "
        f"bytes on {name}/{mode} field '{field_name}'"
    )
