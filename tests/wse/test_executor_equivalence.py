"""Golden equivalence between execution backends, and backend selection.

Every derived executor must be indistinguishable from the per-PE reference
interpreter: byte-identical ``read_field`` results and equal
:class:`SimulationStatistics` on *all* registered benchmark programs — the
paper's five kernels plus the boundary-condition workloads.  (Per-boundary-
mode equivalence is pinned separately in ``test_boundary_conditions.py``.)
"""

import pytest

from repro.benchmarks import benchmark_by_name
from repro.benchmarks.definitions import ALL_BENCHMARKS
from repro.tests_support import run_on_executor
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors import (
    EXECUTOR_ENV_VAR,
    available_executors,
    default_executor_name,
    executor_by_name,
)
from repro.wse.executors.reference import ReferenceExecutor
from repro.wse.executors.tiled import TiledExecutor
from repro.wse.executors.vectorized import VectorizedExecutor
from repro.wse.simulator import WseSimulator

#: every backend validated bit-for-bit against the reference interpreter.
DERIVED_EXECUTORS = ("vectorized", "tiled", "compiled", "auto")


class TestGoldenEquivalence:
    @pytest.mark.parametrize(
        "name", [benchmark.name for benchmark in ALL_BENCHMARKS]
    )
    def test_fields_byte_identical_and_statistics_equal(self, name):
        benchmark = benchmark_by_name(name)
        grid = 9 if benchmark.stencil_points >= 25 else 6
        program = benchmark.program(nx=grid, ny=grid, nz=16, time_steps=2)
        result = compile_stencil_program(
            program, PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
        )

        reference_fields, reference_stats = run_on_executor(
            "reference", program, result.program_module
        )
        for executor in DERIVED_EXECUTORS:
            fields, stats = run_on_executor(
                executor, program, result.program_module
            )
            for field_name, expected in reference_fields.items():
                actual = fields[field_name]
                assert actual.dtype == expected.dtype
                assert actual.shape == expected.shape
                assert actual.tobytes() == expected.tobytes(), (
                    f"field '{field_name}' differs between reference and "
                    f"{executor} on {name}"
                )
            assert stats == reference_stats, (
                f"statistics differ between reference and {executor} on {name}"
            )

    def test_per_pe_counters_match_across_executors(self):
        """Any PE's counters — not just the aggregate — agree, so the
        performance model calibrates identically on every backend."""
        benchmark = benchmark_by_name("Jacobian")
        program = benchmark.program(nx=5, ny=5, nz=16, time_steps=2)
        result = compile_stencil_program(
            program, PipelineOptions(grid_width=5, grid_height=5, num_chunks=2)
        )
        reference = WseSimulator(result.program_module, executor="reference")
        reference.execute()
        centre_ref = reference.pe(2, 2)
        for executor in DERIVED_EXECUTORS:
            simulator = WseSimulator(result.program_module, executor=executor)
            simulator.execute()
            centre = simulator.pe(2, 2)
            assert dict(centre.counters) == dict(centre_ref.counters)
            assert centre.memory_in_use() == centre_ref.memory_in_use()


class TestExecutorSelection:
    def test_registry_lists_all_backends(self):
        assert "reference" in available_executors()
        assert "vectorized" in available_executors()
        assert "tiled" in available_executors()
        assert executor_by_name("reference") is ReferenceExecutor
        assert executor_by_name("vectorized") is VectorizedExecutor
        assert executor_by_name("tiled") is TiledExecutor

    def test_unknown_executor_names_the_alternatives(self):
        with pytest.raises(KeyError, match="unknown executor 'warp'") as excinfo:
            executor_by_name("warp")
        assert "reference" in str(excinfo.value)
        assert "vectorized" in str(excinfo.value)
        assert "tiled" in str(excinfo.value)

    def test_env_var_selects_the_default(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "reference")
        assert default_executor_name() == "reference"
        program_module = _tiny_program_module()
        simulator = WseSimulator(program_module)
        assert simulator.executor_name == "reference"
        assert isinstance(simulator.executor, ReferenceExecutor)

    def test_argument_overrides_env_var(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "reference")
        simulator = WseSimulator(_tiny_program_module(), executor="vectorized")
        assert isinstance(simulator.executor, VectorizedExecutor)

    def test_unknown_executor_on_simulator_raises(self):
        with pytest.raises(KeyError, match="unknown executor"):
            WseSimulator(_tiny_program_module(), executor="nope")


class TestGridOverrideValidation:
    def test_matching_override_is_accepted(self):
        module = _tiny_program_module()
        simulator = WseSimulator(module, width=3, height=3)
        assert (simulator.width, simulator.height) == (3, 3)

    @pytest.mark.parametrize("axis", ["width", "height"])
    def test_mismatching_override_is_rejected(self, axis):
        module = _tiny_program_module()
        overrides = {axis: 7}
        with pytest.raises(ValueError, match=f"{axis}=7 does not match"):
            WseSimulator(module, **overrides)

    def test_non_positive_override_is_rejected(self):
        with pytest.raises(ValueError, match="width must be positive"):
            WseSimulator(_tiny_program_module(), width=0)


def _tiny_program_module():
    from repro.frontends.common import (
        Constant,
        FieldAccess,
        FieldDecl,
        StencilEquation,
        StencilProgram,
    )

    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    program = StencilProgram(
        name="tiny",
        fields=[FieldDecl("u", (3, 3, 4)), FieldDecl("v", (3, 3, 4))],
        equations=[StencilEquation("v", (u(0, 0, 0) + u(1, 0, 0)) * Constant(0.5))],
        time_steps=1,
    )
    result = compile_stencil_program(
        program, PipelineOptions(grid_width=3, grid_height=3, num_chunks=1)
    )
    return result.program_module
