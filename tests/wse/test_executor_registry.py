"""Executor registry errors and selection precedence.

An unknown backend name — whether passed to the constructor or configured
process-wide through ``REPRO_EXECUTOR`` — must raise an error that lists
every registered backend, and an explicit constructor argument must always
beat the environment.
"""

import pytest

from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors import (
    EXECUTOR_ENV_VAR,
    CompiledExecutor,
    Executor,
    ReferenceExecutor,
    TiledExecutor,
    VectorizedExecutor,
    available_executors,
    default_executor_name,
    executor_by_name,
    register_executor,
)
from repro.wse.simulator import WseSimulator


@pytest.fixture(scope="module")
def program_module():
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    program = StencilProgram(
        name="registry_probe",
        fields=[FieldDecl("u", (2, 2, 4)), FieldDecl("v", (2, 2, 4))],
        equations=[StencilEquation("v", u(0, 0, 0) * Constant(2.0))],
        time_steps=1,
    )
    result = compile_stencil_program(
        program, PipelineOptions(grid_width=2, grid_height=2, num_chunks=1)
    )
    return result.program_module


class TestRegistryErrors:
    def test_all_five_backends_are_registered(self):
        from repro.wse.executors.auto import AutoExecutor

        assert available_executors() == (
            "auto",
            "compiled",
            "reference",
            "tiled",
            "vectorized",
        )
        assert executor_by_name("reference") is ReferenceExecutor
        assert executor_by_name("vectorized") is VectorizedExecutor
        assert executor_by_name("tiled") is TiledExecutor
        assert executor_by_name("compiled") is CompiledExecutor
        assert executor_by_name("auto") is AutoExecutor

    def test_unknown_name_lists_every_registered_backend(self):
        with pytest.raises(KeyError, match="unknown executor 'warp'") as excinfo:
            executor_by_name("warp")
        message = str(excinfo.value)
        for name in available_executors():
            assert name in message

    def test_unknown_constructor_argument_raises_with_alternatives(
        self, program_module
    ):
        with pytest.raises(KeyError, match="unknown executor 'gpu'") as excinfo:
            WseSimulator(program_module, executor="gpu")
        assert "tiled" in str(excinfo.value)

    def test_unknown_env_var_raises_at_construction(
        self, program_module, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "quantum")
        assert default_executor_name() == "quantum"
        with pytest.raises(
            KeyError, match="unknown executor 'quantum'"
        ) as excinfo:
            WseSimulator(program_module)
        assert "reference" in str(excinfo.value)

    def test_duplicate_registration_of_a_different_class_is_rejected(self):
        class Impostor(Executor):  # pragma: no cover - never executed
            name = "vectorized"

            def load_field(self, name, columns):
                pass

            def read_field(self, name):
                pass

            def pe(self, x, y):
                pass

            @property
            def grid(self):
                return []

            def launch(self, entry=None):
                pass

            def _drain_tasks(self):
                pass

            def _all_settled(self):
                return True

            def _deliver_round(self):
                return 0

            def _collect_statistics(self):
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_executor(Impostor)
        assert executor_by_name("vectorized") is VectorizedExecutor

    def test_re_registering_the_same_class_is_a_no_op(self):
        assert register_executor(VectorizedExecutor) is VectorizedExecutor
        assert executor_by_name("vectorized") is VectorizedExecutor

    def test_nameless_executor_is_rejected(self):
        class Nameless(Executor):  # pragma: no cover - never executed
            pass

        with pytest.raises(ValueError, match="must define a registry name"):
            register_executor(Nameless)


class TestSelectionPrecedence:
    @pytest.mark.parametrize("env_name", ["reference", "tiled"])
    def test_env_var_selects_the_process_default(
        self, program_module, monkeypatch, env_name
    ):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, env_name)
        simulator = WseSimulator(program_module)
        assert simulator.executor_name == env_name
        assert type(simulator.executor) is executor_by_name(env_name)

    def test_constructor_argument_beats_the_env_var(
        self, program_module, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "reference")
        simulator = WseSimulator(program_module, executor="tiled")
        assert simulator.executor_name == "tiled"
        assert isinstance(simulator.executor, TiledExecutor)

    def test_constructor_argument_beats_even_a_broken_env_var(
        self, program_module, monkeypatch
    ):
        """An explicit valid choice must not trip over garbage in the env."""
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "not-a-backend")
        simulator = WseSimulator(program_module, executor="vectorized")
        assert isinstance(simulator.executor, VectorizedExecutor)

    def test_empty_env_var_falls_back_to_the_default(
        self, program_module, monkeypatch
    ):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "")
        assert default_executor_name() == "vectorized"
