"""Property-based tests of the end-to-end system: random star stencils
compiled by the pipeline match the NumPy reference on the fabric simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontends.common import (
    Add,
    Constant,
    FieldAccess,
    FieldDecl,
    Mul,
    StencilEquation,
    StencilProgram,
)
from repro.tests_support import simulate_against_reference
from repro.transforms.pipeline import PipelineOptions


@st.composite
def star_stencil_programs(draw):
    """Random star-shaped stencils with per-point coefficients."""
    radius = draw(st.integers(min_value=1, max_value=2))
    nz = draw(st.sampled_from([4, 6, 8]))
    steps = draw(st.integers(min_value=1, max_value=2))
    include_axes = draw(
        st.lists(st.booleans(), min_size=3, max_size=3).filter(lambda axes: any(axes))
    )
    terms = [Mul([FieldAccess("src", (0, 0, 0)), Constant(draw(_coeff()))])]
    for axis, enabled in enumerate(include_axes):
        if not enabled:
            continue
        for distance in range(1, radius + 1):
            coefficient = Constant(draw(_coeff()))
            for sign in (1, -1):
                offset = [0, 0, 0]
                offset[axis] = sign * distance
                terms.append(Mul([FieldAccess("src", tuple(offset)), coefficient]))
    nx = ny = 2 * radius + 1
    program = StencilProgram(
        name="random_star",
        fields=[
            FieldDecl("src", (nx, ny, nz), halo=(radius, radius, radius)),
            FieldDecl("dst", (nx, ny, nz), halo=(radius, radius, radius)),
        ],
        equations=[StencilEquation("dst", Add(terms))],
        time_steps=steps,
    )
    return program


def _coeff():
    return st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, width=32)


class TestRandomStencils:
    @given(program=star_stencil_programs(), num_chunks=st.sampled_from([1, 2]))
    @settings(max_examples=12, deadline=None)
    def test_simulation_matches_reference(self, program, num_chunks):
        nx, ny, _ = program.interior_shape
        simulated, reference = simulate_against_reference(
            program,
            PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=num_chunks),
        )
        np.testing.assert_allclose(
            simulated["dst"], reference["dst"], rtol=2e-5, atol=1e-5
        )

    @given(program=star_stencil_programs())
    @settings(max_examples=6, deadline=None)
    def test_halo_cells_never_written(self, program):
        nx, ny, _ = program.interior_shape
        simulated, _ = simulate_against_reference(
            program, PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=1)
        )
        halo = program.field("dst").halo[2]
        columns = simulated["dst"]
        # z halo cells of the destination stay exactly zero on every PE.
        assert np.all(columns[:, :, :halo] == 0.0)
        assert np.all(columns[:, :, columns.shape[2] - halo :] == 0.0)
