"""Simulator statistics aggregation and host-side field-name diagnostics."""

import numpy as np
import pytest

from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.simulator import WseSimulator


def _simulator() -> WseSimulator:
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0) + u(1, 0, 0) + u(-1, 0, 0) + u(0, 1, 0) + u(0, -1, 0)
    ) * Constant(0.2)
    program = StencilProgram(
        name="stats_probe",
        fields=[FieldDecl("u", (3, 3, 8)), FieldDecl("v", (3, 3, 8))],
        equations=[StencilEquation("v", expression)],
        time_steps=1,
    )
    options = PipelineOptions(grid_width=3, grid_height=3, num_chunks=1)
    result = compile_stencil_program(program, options)
    return WseSimulator(result.program_module)


def test_dsd_elements_are_aggregated_into_simulation_statistics():
    simulator = _simulator()
    statistics = simulator.execute()
    assert statistics.dsd_ops > 0
    # Every DSD op processes at least one element, and the per-PE counters
    # must sum up into the aggregate exactly.
    assert statistics.dsd_elements >= statistics.dsd_ops
    expected = sum(
        pe.counters["dsd_elements"] for row in simulator.grid for pe in row
    )
    assert statistics.dsd_elements == expected


def test_load_field_names_the_missing_buffer():
    simulator = _simulator()
    columns = np.zeros((3, 3, 8), dtype=np.float32)
    with pytest.raises(KeyError, match="unknown field 'nope'") as excinfo:
        simulator.load_field("nope", columns)
    assert "available buffers:" in str(excinfo.value)


def test_read_field_names_the_missing_buffer():
    simulator = _simulator()
    with pytest.raises(KeyError, match="unknown field 'missing'") as excinfo:
        simulator.read_field("missing")
    assert "available buffers:" in str(excinfo.value)
