"""Simulator statistics aggregation and host-side field-name diagnostics."""

import numpy as np
import pytest

from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors import SimulationStatistics
from repro.wse.simulator import WseSimulator


def _simulator() -> WseSimulator:
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0) + u(1, 0, 0) + u(-1, 0, 0) + u(0, 1, 0) + u(0, -1, 0)
    ) * Constant(0.2)
    program = StencilProgram(
        name="stats_probe",
        fields=[FieldDecl("u", (3, 3, 8)), FieldDecl("v", (3, 3, 8))],
        equations=[StencilEquation("v", expression)],
        time_steps=1,
    )
    options = PipelineOptions(grid_width=3, grid_height=3, num_chunks=1)
    result = compile_stencil_program(program, options)
    return WseSimulator(result.program_module)


def test_dsd_elements_are_aggregated_into_simulation_statistics():
    simulator = _simulator()
    statistics = simulator.execute()
    assert statistics.dsd_ops > 0
    # Every DSD op processes at least one element, and the per-PE counters
    # must sum up into the aggregate exactly.
    assert statistics.dsd_elements >= statistics.dsd_ops
    expected = sum(
        pe.counters["dsd_elements"] for row in simulator.grid for pe in row
    )
    assert statistics.dsd_elements == expected


def test_load_field_names_the_missing_buffer():
    simulator = _simulator()
    columns = np.zeros((3, 3, 8), dtype=np.float32)
    with pytest.raises(KeyError, match="unknown field 'nope'") as excinfo:
        simulator.load_field("nope", columns)
    assert "available buffers:" in str(excinfo.value)


def test_read_field_names_the_missing_buffer():
    simulator = _simulator()
    with pytest.raises(KeyError, match="unknown field 'missing'") as excinfo:
        simulator.read_field("missing")
    assert "available buffers:" in str(excinfo.value)


class TestStatisticsMerge:
    """``SimulationStatistics.merge``: counters sum, peak memory maxes."""

    def test_counters_sum_and_memory_maxes(self):
        merged = SimulationStatistics.merge(
            [
                SimulationStatistics(
                    rounds=2,
                    tasks_run=10,
                    exchanges=3,
                    dsd_ops=7,
                    dsd_elements=70,
                    wavelets_sent=12,
                    max_pe_memory_bytes=512,
                ),
                SimulationStatistics(
                    rounds=1,
                    tasks_run=4,
                    exchanges=1,
                    dsd_ops=2,
                    dsd_elements=20,
                    wavelets_sent=6,
                    max_pe_memory_bytes=768,
                ),
            ]
        )
        assert merged == SimulationStatistics(
            rounds=3,
            tasks_run=14,
            exchanges=4,
            dsd_ops=9,
            dsd_elements=90,
            wavelets_sent=18,
            max_pe_memory_bytes=768,
        )

    def test_empty_merge_is_the_zero_statistics(self):
        assert SimulationStatistics.merge([]) == SimulationStatistics()

    def test_single_part_merge_is_a_copy(self):
        part = SimulationStatistics(rounds=5, tasks_run=9, max_pe_memory_bytes=64)
        merged = SimulationStatistics.merge([part])
        assert merged == part
        merged.tasks_run += 1  # the merge must not alias its input
        assert part.tasks_run == 9

    def test_merge_matches_whole_grid_execution(self):
        """Merging per-shard-shaped parts reproduces an executor's
        aggregate: the property the tiled backend relies on."""
        simulator = _simulator()
        whole = simulator.execute()
        # Split the 3x3 fabric's aggregate into a 6-PE and a 3-PE part the
        # way a row-banded sharding would.
        per_pe = {
            name: value // 9
            for name, value in (
                ("tasks_run", whole.tasks_run),
                ("exchanges", whole.exchanges),
                ("dsd_ops", whole.dsd_ops),
                ("dsd_elements", whole.dsd_elements),
                ("wavelets_sent", whole.wavelets_sent),
            )
        }
        parts = [SimulationStatistics(rounds=whole.rounds)]
        for pes in (6, 3):
            parts.append(
                SimulationStatistics(
                    tasks_run=per_pe["tasks_run"] * pes,
                    exchanges=per_pe["exchanges"] * pes,
                    dsd_ops=per_pe["dsd_ops"] * pes,
                    dsd_elements=per_pe["dsd_elements"] * pes,
                    wavelets_sent=per_pe["wavelets_sent"] * pes,
                    max_pe_memory_bytes=whole.max_pe_memory_bytes,
                )
            )
        assert SimulationStatistics.merge(parts) == whole
