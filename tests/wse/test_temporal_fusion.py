"""Temporal fusion (multi-round superkernels), pinned end to end.

The contract: a temporal block depth R > 1 fuses R delivery rounds per
kernel invocation — whole-grid round blocking on ``compiled``, deep-halo
ping-pong blocking on ``tiled`` — while staying *byte-identical* to
unblocked execution on every benchmark and boundary mode.  These tests pin
the identity matrix, the fingerprint keying (R and only R perturbs the
cache key), the dispatcher's delivery-round estimate, its opt-in online
learning, and the synchronisation accounting (one barrier per block).
"""

import math
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.numpy_ref import allocate_fields, field_to_columns
from repro.benchmarks import benchmark_by_name
from repro.benchmarks.definitions import ALL_BENCHMARKS
from repro.eval.trajectory import read_trajectory
from repro.frontends.common import BoundaryCondition
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.codegen import FUSION_ENV_VAR, get_kernel
from repro.wse.executors.auto import (
    FORCE_ENV_VAR,
    NOMINAL_ROUNDS,
    OBSERVED_NAME,
    RECORD_ENV_VAR,
    TRAJECTORY_ENV_VAR,
    AutoExecutor,
    choose_block_depth,
    estimate_delivery_rounds,
)
from repro.wse.interpreter import ProgramImage
from repro.wse.plan import ExecutionPlan
from repro.wse.simulator import WseSimulator

#: the byte-identity matrix: a distance-1 5-point kernel, the radius-4
#: multi-distance Seismic kernel (deep halos wider than a shard), and the
#: multi-field coupled UVKBE system.
MATRIX_BENCHMARKS = ("Jacobian", "Seismic", "UVKBE")

BOUNDARIES = (
    BoundaryCondition.dirichlet(),
    BoundaryCondition.periodic(),
    BoundaryCondition.reflect(),
)

BLOCK_DEPTHS = (2, 4)

TIME_STEPS = 5


def _compile(name, boundary=None, time_steps=TIME_STEPS):
    benchmark = benchmark_by_name(name)
    grid = 9 if benchmark.stencil_points >= 25 else 6
    program = benchmark.program(nx=grid, ny=grid, nz=12, time_steps=time_steps)
    options = PipelineOptions(grid_width=grid, grid_height=grid, num_chunks=2)
    if boundary is not None:
        options = replace(options, boundary=boundary)
        program = replace(program, boundary=boundary)
    result = compile_stencil_program(program, options)
    return program, result.program_module


def _run(executor, program, program_module, seed=13):
    """Load seeded fields, execute, and return (bytes-per-field, stats,
    executor instance) — the instance exposes the blocking decision."""
    rng = np.random.default_rng(seed)
    fields = allocate_fields(
        program, lambda name, shape: rng.uniform(-1, 1, shape)
    )
    simulator = WseSimulator(program_module, executor=executor)
    for decl in program.fields:
        simulator.load_field(
            decl.name,
            field_to_columns(program, decl.name, fields[decl.name]),
        )
    statistics = simulator.execute()
    gathered = {
        decl.name: simulator.read_field(decl.name).tobytes()
        for decl in program.fields
    }
    return gathered, statistics, simulator.executor


class TestBlockedByteIdentity:
    """R ∈ {2, 4} byte-identical to R = 1, compiled and tiled, per mode."""

    @pytest.mark.parametrize("name", MATRIX_BENCHMARKS)
    @pytest.mark.parametrize("boundary", BOUNDARIES, ids=lambda b: b.spec)
    def test_blocked_matches_unblocked(self, monkeypatch, name, boundary):
        program, module = _compile(name, boundary)
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
        baselines = {
            executor: _run(executor, program, module)
            for executor in ("compiled", "tiled")
        }
        for depth in BLOCK_DEPTHS:
            monkeypatch.setenv(FUSION_ENV_VAR, str(depth))
            for executor in ("compiled", "tiled"):
                fields, stats, instance = _run(executor, program, module)
                base_fields, base_stats, _ = baselines[executor]
                assert instance.block_fallback_reason is None, (
                    f"{executor} declined R={depth} on {name} under "
                    f"{boundary.spec}: {instance.block_fallback_reason}"
                )
                assert stats.block_depth == depth
                for field_name, expected in base_fields.items():
                    assert fields[field_name] == expected, (
                        f"field '{field_name}' differs between R=1 and "
                        f"R={depth} on {executor}/{name}/{boundary.spec}"
                    )
                # Block depth and synchronisation counters are metadata
                # (compare=False): the observable statistics must be equal.
                assert stats == base_stats


class TestFingerprintKeying:
    """R folds into the kernel cache key — and only R perturbs it."""

    def test_depth_perturbs_the_fingerprint(self):
        program, module = _compile("Jacobian")
        image = ProgramImage(module)
        plan = ExecutionPlan.compile(image, 6, 6)
        base = get_kernel(image, plan).fingerprint
        assert get_kernel(image, plan, rounds=1).fingerprint == base
        two = get_kernel(image, plan, rounds=2).fingerprint
        four = get_kernel(image, plan, rounds=4).fingerprint
        assert two != base
        assert four != base
        assert two != four
        assert get_kernel(image, plan, rounds=2).fingerprint == two


class TestDeliveryRoundEstimate:
    """The dispatcher's static round estimate equals the measured count."""

    @pytest.mark.parametrize(
        "name", [benchmark.name for benchmark in ALL_BENCHMARKS]
    )
    def test_estimate_matches_executed_rounds(self, name):
        program, module = _compile(name, time_steps=3)
        image = ProgramImage(module)
        _, stats, _ = _run("vectorized", program, module)
        assert estimate_delivery_rounds(image) == stats.rounds

    def test_opaque_schedule_falls_back_to_nominal(self):
        class _EmptyImage:
            callables = {}
            variables = {}

        assert estimate_delivery_rounds(_EmptyImage()) == NOMINAL_ROUNDS


class TestBlockDepthChoice:
    def test_compiled_takes_deepest_block_the_loop_fills(self):
        assert choose_block_depth("compiled", 64, 64, rounds=12) == 4
        assert choose_block_depth("compiled", 64, 64, rounds=3) == 2
        assert choose_block_depth("compiled", 64, 64, rounds=1) == 1

    def test_tiled_requires_wide_shards(self):
        # Shards here are 2x2 (the conftest pins the shard grid), so the
        # minimum shard side is width // 2.
        assert choose_block_depth("tiled", 128, 128, rounds=12, cpus=4) == 4
        assert choose_block_depth("tiled", 64, 64, rounds=12, cpus=4) == 2
        assert choose_block_depth("tiled", 16, 16, rounds=12, cpus=4) == 1
        assert choose_block_depth("tiled", 128, 128, rounds=3, cpus=4) == 1

    def test_interpreting_backends_never_block(self):
        assert choose_block_depth("reference", 256, 256, rounds=64) == 1
        assert choose_block_depth("vectorized", 256, 256, rounds=64) == 1

    def test_auto_prices_depth_from_the_image(self, monkeypatch):
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
        monkeypatch.setenv(FORCE_ENV_VAR, "compiled")
        program, module = _compile("Jacobian")
        image = ProgramImage(module)
        executor = AutoExecutor(image, 6, 6)
        # time_steps=5 → 5 delivery rounds → the compiled delegate blocks
        # at the deepest supported depth.
        assert executor.block_depth == 4
        assert executor._delegate._rounds_per_block == 4

    def test_env_override_stays_authoritative(self, monkeypatch):
        monkeypatch.setenv(FUSION_ENV_VAR, "2")
        monkeypatch.setenv(FORCE_ENV_VAR, "compiled")
        program, module = _compile("Jacobian")
        image = ProgramImage(module)
        executor = AutoExecutor(image, 6, 6)
        assert executor.block_depth == 1
        assert executor._delegate._rounds_per_block == 2


class TestOnlineLearning:
    """Opt-in observation rows land in the trajectory, one per day."""

    def _run_auto(self, program, module, seed=13):
        rng = np.random.default_rng(seed)
        fields = allocate_fields(
            program, lambda name, shape: rng.uniform(-1, 1, shape)
        )
        simulator = WseSimulator(module, executor="auto")
        for decl in program.fields:
            simulator.load_field(
                decl.name,
                field_to_columns(program, decl.name, fields[decl.name]),
            )
        simulator.execute()

    def test_observation_recorded_and_deduped_by_day(
        self, monkeypatch, tmp_path
    ):
        path = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv(TRAJECTORY_ENV_VAR, str(path))
        monkeypatch.setenv(RECORD_ENV_VAR, "1")
        monkeypatch.setenv(FORCE_ENV_VAR, "vectorized")
        program, module = _compile("Jacobian", time_steps=2)
        self._run_auto(program, module)
        self._run_auto(program, module)
        rows = read_trajectory(path)
        assert len(rows) == 1
        row = rows[0]
        assert row["name"] == OBSERVED_NAME
        assert row["grid"] == "6x6"
        assert row["executor"] == "vectorized"
        assert row["seconds"] > 0
        assert row["day"] == time.strftime("%Y-%m-%d")

    def test_recording_is_opt_in(self, monkeypatch, tmp_path):
        path = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv(TRAJECTORY_ENV_VAR, str(path))
        monkeypatch.delenv(RECORD_ENV_VAR, raising=False)
        monkeypatch.setenv(FORCE_ENV_VAR, "vectorized")
        program, module = _compile("Jacobian", time_steps=2)
        self._run_auto(program, module)
        assert not path.exists()


class TestSynchronisationAccounting:
    """One barrier per temporal block, and the seam counters surface."""

    def test_blocked_tiled_barriers_once_per_block(self, monkeypatch):
        program, module = _compile("Jacobian")
        monkeypatch.delenv(FUSION_ENV_VAR, raising=False)
        _, base_stats, base_instance = _run("tiled", program, module)
        monkeypatch.setenv(FUSION_ENV_VAR, "2")
        _, stats, instance = _run("tiled", program, module)
        assert instance.block_fallback_reason is None
        blocks = math.ceil(stats.rounds / 2)
        if stats.barrier_waits:
            # The forked driver crossed a real barrier exactly once per
            # block — R× fewer synchronisation points than per-round
            # execution (the unblocked compiled-shard loop barriers twice
            # per round: publication and consumption).
            assert stats.barrier_waits == blocks
            if base_stats.barrier_waits:
                assert stats.barrier_waits < base_stats.barrier_waits
        assert stats.seam_spins >= 0
        assert stats.seam_backoffs >= 0

    def test_compiled_stamps_block_depth(self, monkeypatch):
        program, module = _compile("Jacobian")
        monkeypatch.setenv(FUSION_ENV_VAR, "4")
        _, stats, instance = _run("compiled", program, module)
        assert instance.block_fallback_reason is None
        assert stats.block_depth == 4
        monkeypatch.delenv(FUSION_ENV_VAR)
        _, stats, _ = _run("compiled", program, module)
        assert stats.block_depth == 0
