"""The tiled sharded executor: decomposition, equivalence, fallbacks.

The heavyweight cross-backend guarantees (byte-identical fields and equal
statistics on the golden benchmarks and under every boundary mode) live in
``test_executor_equivalence.py`` / ``test_boundary_conditions.py``, whose
executor matrices include ``tiled``; this file covers the backend's own
mechanics: the shard-box geometry, the ``REPRO_TILED_SHARDS`` override, the
sequential in-process fallback, and the per-PE host surface.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.frontends.common import (
    Constant,
    FieldAccess,
    FieldDecl,
    StencilEquation,
    StencilProgram,
)
from repro.tests_support import run_on_executor
from repro.transforms.pipeline import PipelineOptions, compile_stencil_program
from repro.wse.executors.tiled import (
    SHARD_ENV_VAR,
    shard_boxes,
    shard_grid,
)
from repro.wse.simulator import WseSimulator


def _star_program(nx, ny, nz, steps=2, name="tiled_probe"):
    u = lambda dx, dy, dz: FieldAccess("u", (dx, dy, dz))
    expression = (
        u(0, 0, 0)
        + u(1, 0, 0)
        + u(-1, 0, 0)
        + u(0, 1, 0)
        + u(0, -1, 0)
        + u(0, 0, 1)
    ) * Constant(0.25)
    return StencilProgram(
        name=name,
        fields=[FieldDecl("u", (nx, ny, nz)), FieldDecl("v", (nx, ny, nz))],
        equations=[StencilEquation("v", expression)],
        time_steps=steps,
    )


def _compiled(nx, ny, nz=8, steps=2, name="tiled_probe"):
    program = _star_program(nx, ny, nz, steps, name)
    result = compile_stencil_program(
        program, PipelineOptions(grid_width=nx, grid_height=ny, num_chunks=2)
    )
    return program, result.program_module


class TestShardGeometry:
    def test_boxes_tile_the_fabric_exactly(self):
        for width, height, kx, ky in (
            (7, 5, 2, 2),
            (8, 8, 3, 3),
            (3, 3, 3, 3),
            (5, 1, 1, 1),
            (9, 4, 3, 2),
        ):
            boxes = shard_boxes(width, height, kx, ky)
            assert len(boxes) == kx * ky
            covered = np.zeros((height, width), dtype=int)
            for y0, y1, x0, x1 in boxes:
                assert y0 < y1 and x0 < x1, "no shard may be empty"
                covered[y0:y1, x0:x1] += 1
            assert np.all(covered == 1), "every PE in exactly one shard"

    def test_uneven_bands_stay_balanced(self):
        boxes = shard_boxes(7, 7, 2, 2)
        widths = sorted({x1 - x0 for _, _, x0, x1 in boxes})
        assert widths == [3, 4]

    def test_grid_clamps_to_the_fabric(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        assert shard_grid(1, 1, cpus=16) == (1, 1)
        assert shard_grid(8, 1, cpus=16) == (2, 1)  # long axis still splits
        assert shard_grid(8, 8, cpus=4) == (2, 2)

    def test_grid_auto_derives_from_usable_cpus(self, monkeypatch):
        """Unset env: kx*ky workers ≈ one per CPU, but never shards thinner
        than MIN_SHARD_SIDE PEs along either axis."""
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        assert shard_grid(64, 64, cpus=1) == (1, 1)  # no CPUs, no forking
        assert shard_grid(64, 64, cpus=4) == (2, 2)
        assert shard_grid(64, 64, cpus=9) == (3, 3)
        assert shard_grid(64, 64, cpus=16) == (4, 4)
        assert shard_grid(64, 64, cpus=8) == (4, 2)  # all 8 CPUs used
        # Plenty of CPUs never splits shards below MIN_SHARD_SIDE.
        assert shard_grid(8, 8, cpus=64) == (2, 2)

    def test_ragged_fabrics_shard_along_their_long_axis(self, monkeypatch):
        """Regression: the old square-extent heuristic collapsed 64x8 and
        64x4 fabrics to a single shard because the short axis could not
        host K bands; the per-axis clamp keeps the long axis parallel."""
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        assert shard_grid(64, 8, cpus=4) == (2, 2)
        assert shard_grid(64, 8, cpus=16) == (8, 2)
        assert shard_grid(64, 4, cpus=16) == (16, 1)
        assert shard_grid(4, 64, cpus=8) == (1, 2)
        for kx, ky in (shard_grid(64, 8, cpus=16), shard_grid(64, 4, cpus=16)):
            for y0, y1, x0, x1 in shard_boxes(64, 8 if ky > 1 else 4, kx, ky):
                assert (y1 - y0) >= 4 and (x1 - x0) >= 4

    def test_auto_grid_reaches_the_executor(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
        monkeypatch.setattr(
            "repro.wse.executors.tiled.usable_cpu_count", lambda: 4
        )
        _, module = _compiled(8, 8, name="auto_extent")
        simulator = WseSimulator(module, executor="tiled")
        assert len(simulator.executor.boxes) == 4  # 2x2 from 4 CPUs

    def test_env_override_and_validation(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "3")
        assert shard_grid(9, 9) == (3, 3)
        # The override clamps per axis instead of failing on thin fabrics.
        assert shard_grid(9, 2) == (3, 2)
        monkeypatch.setenv(SHARD_ENV_VAR, "0")
        with pytest.raises(ValueError, match="must be >= 1"):
            shard_grid(9, 9)
        monkeypatch.setenv(SHARD_ENV_VAR, "many")
        with pytest.raises(ValueError, match="expected a positive integer"):
            shard_grid(9, 9)


class TestTiledEquivalence:
    def test_matches_vectorized_on_an_uneven_grid(self):
        """5x7 with 2x2 shards: seams fall on uneven band edges."""
        program, module = _compiled(5, 7, name="uneven")
        vectorized_fields, vectorized_stats = run_on_executor(
            "vectorized", program, module
        )
        tiled_fields, tiled_stats = run_on_executor("tiled", program, module)
        for name, expected in vectorized_fields.items():
            assert tiled_fields[name].tobytes() == expected.tobytes()
        assert tiled_stats == vectorized_stats

    def test_single_pe_grid_degenerates_to_one_shard(self):
        program, module = _compiled(1, 1, name="lonely_tiled")
        simulator = WseSimulator(module, executor="tiled")
        assert len(simulator.executor.boxes) == 1
        _, stats = run_on_executor("tiled", program, module)
        _, expected = run_on_executor("vectorized", program, module)
        assert stats == expected

    def test_sequential_fallback_is_bit_identical(self, monkeypatch):
        """A 1-shard grid never forks; it must still match exactly."""
        monkeypatch.setenv(SHARD_ENV_VAR, "1")
        program, module = _compiled(4, 4, name="seq_fallback")
        tiled_fields, tiled_stats = run_on_executor("tiled", program, module)
        monkeypatch.delenv(SHARD_ENV_VAR)
        vectorized_fields, vectorized_stats = run_on_executor(
            "vectorized", program, module
        )
        for name, expected in vectorized_fields.items():
            assert tiled_fields[name].tobytes() == expected.tobytes()
        assert tiled_stats == vectorized_stats

    def test_three_by_three_shards(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV_VAR, "3")
        program, module = _compiled(6, 6, name="nine_shards")
        simulator = WseSimulator(module, executor="tiled")
        assert len(simulator.executor.boxes) == 9
        tiled_fields, tiled_stats = run_on_executor("tiled", program, module)
        monkeypatch.delenv(SHARD_ENV_VAR)
        vectorized_fields, vectorized_stats = run_on_executor(
            "vectorized", program, module
        )
        for name, expected in vectorized_fields.items():
            assert tiled_fields[name].tobytes() == expected.tobytes()
        assert tiled_stats == vectorized_stats


class TestRepeatedExecution:
    def test_second_execute_matches_the_other_backends(self):
        """Scalar interpreter state persists across runs: a relaunch must
        resume from it (fields AND statistics), not restart the program."""
        program, module = _compiled(4, 4, name="twice")
        results = {}
        for executor in ("reference", "vectorized", "tiled", "compiled"):
            simulator = WseSimulator(module, executor=executor)
            z = simulator.pe(0, 0).buffers["u"].shape[0]
            simulator.load_field("u", np.ones((4, 4, z), dtype=np.float32))
            simulator.execute()
            simulator.execute()
            results[executor] = (
                {f: simulator.read_field(f).tobytes() for f in ("u", "v")},
                simulator.statistics,
            )
        reference_fields, reference_stats = results["reference"]
        for executor in ("vectorized", "tiled", "compiled"):
            fields, stats = results[executor]
            assert fields == reference_fields
            assert stats == reference_stats

    @pytest.mark.parametrize(
        "executor", ("reference", "vectorized", "tiled", "compiled")
    )
    def test_run_without_new_launch_is_a_settled_no_op(self, executor):
        """On every backend alike: no launch since the last run means the
        statistics come back unchanged and fields stay untouched."""
        program, module = _compiled(4, 4, name="rerun")
        simulator = WseSimulator(module, executor=executor)
        stats_after_execute = replace(simulator.execute())
        fields_before = simulator.read_field("v").tobytes()
        simulator.run()  # no launch in between: nothing to do
        assert simulator.read_field("v").tobytes() == fields_before
        assert simulator.statistics == stats_after_execute


class TestCompiledShards:
    def test_shard_kernels_compile_with_distinct_fingerprints(self):
        """Fusable programs get one kernel per shard box, each fingerprinted
        under the plan + box key (so the source store never cross-serves)."""
        _, module = _compiled(8, 8, name="shard_kernels")
        simulator = WseSimulator(module, executor="tiled")
        executor = simulator.executor
        assert executor.tiled_fallback_reason is None
        assert executor.kernel_fingerprints is not None
        assert len(executor.kernel_fingerprints) == len(executor.boxes)
        assert len(set(executor.kernel_fingerprints)) == len(executor.boxes)

    def test_shard_fingerprints_differ_from_the_full_grid_kernel(self):
        from repro.wse.codegen import get_kernel

        _, module = _compiled(8, 8, name="shard_vs_full")
        simulator = WseSimulator(module, executor="tiled")
        executor = simulator.executor
        full = get_kernel(executor.image, executor.plan)
        assert full.fingerprint not in executor.kernel_fingerprints

    def test_worker_pool_is_reused_across_runs(self):
        """The tentpole's pool contract: the second execute() must reuse
        the forked workers, not pay fork + kernel binding again."""
        program, module = _compiled(8, 8, name="pool_reuse")
        simulator = WseSimulator(module, executor="tiled")
        executor = simulator.executor
        simulator.execute()
        first_pool = executor._pool
        if first_pool is None:
            pytest.skip("platform without fork: no pool to reuse")
        first_pids = [worker.pid for worker in first_pool.workers]
        simulator.execute()
        assert executor._pool is first_pool
        assert [w.pid for w in executor._pool.workers] == first_pids
        assert first_pool.healthy

    def test_results_match_vectorized_through_the_pool(self):
        program, module = _compiled(9, 9, name="pool_parity")
        tiled_fields, tiled_stats = run_on_executor("tiled", program, module)
        vec_fields, vec_stats = run_on_executor("vectorized", program, module)
        for name, expected in vec_fields.items():
            assert tiled_fields[name].tobytes() == expected.tobytes()
        assert tiled_stats == vec_stats


class TestForkedFailurePaths:
    def test_worker_errors_propagate_to_the_parent(self):
        """A shard raising inside a forked worker (here: the round budget
        exhausted) must release its siblings and surface in the parent as
        an InterpretationError carrying the worker's diagnosis — not hang
        out the sync timeout."""
        from repro.ir.exceptions import InterpretationError

        program, module = _compiled(4, 4, steps=2, name="budget")
        simulator = WseSimulator(module, executor="tiled")
        assert len(simulator.executor.boxes) > 1  # genuinely forked
        simulator.launch()
        with pytest.raises(InterpretationError, match="exceeded 1 rounds"):
            simulator.run(max_rounds=1)


class TestTiledHostSurface:
    def test_per_pe_views_match_vectorized(self):
        _, module = _compiled(4, 4, name="pe_views")
        vectorized = WseSimulator(module, executor="vectorized")
        tiled = WseSimulator(module, executor="tiled")
        for simulator in (vectorized, tiled):
            simulator.load_field(
                "u", np.ones((4, 4, simulator.pe(0, 0).buffers["u"].shape[0]),
                             dtype=np.float32)
            )
            simulator.execute()
        centre_vec = vectorized.pe(2, 2)
        centre_til = tiled.pe(2, 2)
        assert dict(centre_til.counters) == dict(centre_vec.counters)
        assert centre_til.memory_in_use() == centre_vec.memory_in_use()
        assert centre_til.halted == centre_vec.halted
        for name, column in centre_vec.buffers.items():
            assert centre_til.buffers[name].tobytes() == column.tobytes()

    def test_grid_views_cover_the_fabric(self):
        _, module = _compiled(3, 2, name="views")
        simulator = WseSimulator(module, executor="tiled")
        assert len(simulator.grid) == 2
        assert all(len(row) == 3 for row in simulator.grid)

    def test_missing_field_is_diagnosed(self):
        _, module = _compiled(2, 2, name="missing")
        simulator = WseSimulator(module, executor="tiled")
        with pytest.raises(KeyError, match="unknown field 'nope'"):
            simulator.read_field("nope")

    def test_load_field_shape_validation(self):
        _, module = _compiled(2, 2, name="shapes")
        simulator = WseSimulator(module, executor="tiled")
        with pytest.raises(ValueError, match="expected columns of shape"):
            simulator.load_field("u", np.zeros((3, 2, 4), dtype=np.float32))
